//! LiDAR-style point sampling from a scene.
//!
//! Real LiDAR frames contain three kinds of returns that matter for pillar
//! occupancy statistics: (1) dense clusters of points on object surfaces,
//! (2) a broad carpet of ground returns whose density falls with range, and
//! (3) sparse clutter (vegetation, poles, walls). The sampler reproduces all
//! three so that the active-pillar count and clustering match the few-percent
//! occupancy the paper reports for KITTI/nuScenes.

use crate::geometry::Point3;
use crate::scene::Scene;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// LiDAR sampling configuration.
///
/// # Example
///
/// ```
/// use spade_pointcloud::LidarConfig;
/// let cfg = LidarConfig::kitti_like();
/// assert!(cfg.ground_points > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LidarConfig {
    /// Number of ground-return points to scatter over the detection range.
    pub ground_points: usize,
    /// Number of clutter points (walls, poles, vegetation).
    pub clutter_points: usize,
    /// Number of clutter clusters the clutter points are grouped into.
    pub clutter_clusters: usize,
    /// Scale factor on per-object surface point counts.
    pub object_density_scale: f64,
    /// Range (m) beyond which object point counts fall off quadratically.
    pub reference_range: f64,
    /// Gaussian noise applied to each point coordinate (metres, std dev).
    pub position_noise: f64,
}

impl LidarConfig {
    /// A KITTI-like (64-beam, forward-facing crop) configuration.
    #[must_use]
    pub fn kitti_like() -> Self {
        Self {
            ground_points: 14_000,
            clutter_points: 4_000,
            clutter_clusters: 40,
            object_density_scale: 1.0,
            reference_range: 10.0,
            position_noise: 0.02,
        }
    }

    /// A nuScenes-like (32-beam, full-surround) configuration: fewer points
    /// over a larger area, hence sparser pillars.
    #[must_use]
    pub fn nuscenes_like() -> Self {
        Self {
            ground_points: 18_000,
            clutter_points: 6_000,
            clutter_clusters: 60,
            object_density_scale: 0.6,
            reference_range: 10.0,
            position_noise: 0.03,
        }
    }
}

impl Default for LidarConfig {
    fn default() -> Self {
        Self::kitti_like()
    }
}

/// Samples a point cloud from a scene. Deterministic for a given seed.
///
/// Object surface, ground, and clutter returns are all drawn from one RNG
/// stream, so the output is a function of `(scene, config, seed)` alone.
#[must_use]
pub fn sample_scene(scene: &Scene, config: &LidarConfig, seed: u64) -> Vec<Point3> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5bad_c0de);
    let mut points = Vec::new();
    object_returns_into(scene, config, &mut rng, &mut points);
    background_into(
        scene.config().x_range,
        scene.config().y_range,
        config,
        &mut rng,
        &mut points,
    );
    points
}

/// Samples only the object surface returns of a scene, on its own seed
/// stream. The persistent-world drive generator re-samples these every frame
/// (objects move) while reusing one fixed background for the whole drive.
#[must_use]
pub fn sample_object_returns(scene: &Scene, config: &LidarConfig, seed: u64) -> Vec<Point3> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0b1e_c7ed);
    let mut points = Vec::new();
    object_returns_into(scene, config, &mut rng, &mut points);
    points
}

/// Samples only the static background (ground carpet + clutter clusters) of
/// a detection range, on its own seed stream. Deterministic for a given
/// `(ranges, config, seed)`; the persistent-world drive generator samples
/// this once per drive so consecutive frames share their background pillars.
#[must_use]
pub fn sample_background(
    x_range: (f64, f64),
    y_range: (f64, f64),
    config: &LidarConfig,
    seed: u64,
) -> Vec<Point3> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba5e_11e5);
    let mut points = Vec::new();
    background_into(x_range, y_range, config, &mut rng, &mut points);
    points
}

/// Object surface returns, appended to `points` from the caller's RNG.
fn object_returns_into(
    scene: &Scene,
    config: &LidarConfig,
    rng: &mut StdRng,
    points: &mut Vec<Point3>,
) {
    let (x_min, x_max) = scene.config().x_range;
    let (y_min, y_max) = scene.config().y_range;
    for obj in scene.objects() {
        let bbox = obj.bbox;
        let range = (bbox.cx * bbox.cx + bbox.cy * bbox.cy).sqrt().max(1.0);
        let falloff = (config.reference_range / range).powi(2).min(1.0);
        let surface_area = 2.0 * (bbox.length + bbox.width) * bbox.height;
        let count =
            (obj.class.point_density() * surface_area * falloff * config.object_density_scale)
                .round()
                .max(3.0) as usize;
        for _ in 0..count {
            // Sample on the box surface facing the sensor: pick one of the
            // four vertical faces weighted by its area, then jitter.
            let on_length_face = rng.gen_bool(bbox.length / (bbox.length + bbox.width));
            let (lx, ly) = if on_length_face {
                (
                    rng.gen_range(-bbox.length / 2.0..bbox.length / 2.0),
                    if rng.gen_bool(0.5) {
                        bbox.width / 2.0
                    } else {
                        -bbox.width / 2.0
                    },
                )
            } else {
                (
                    if rng.gen_bool(0.5) {
                        bbox.length / 2.0
                    } else {
                        -bbox.length / 2.0
                    },
                    rng.gen_range(-bbox.width / 2.0..bbox.width / 2.0),
                )
            };
            let (s, c) = bbox.yaw.sin_cos();
            let x = bbox.cx + lx * c - ly * s + rng.gen_range(-1.0..1.0) * config.position_noise;
            let y = bbox.cy + lx * s + ly * c + rng.gen_range(-1.0..1.0) * config.position_noise;
            let z = bbox.cz + rng.gen_range(-bbox.height / 2.0..bbox.height / 2.0);
            if x >= x_min && x < x_max && y >= y_min && y < y_max {
                points.push(Point3::with_intensity(x, y, z, rng.gen_range(0.2..0.9)));
            }
        }
    }
}

/// Ground and clutter returns, appended to `points` from the caller's RNG.
fn background_into(
    x_range: (f64, f64),
    y_range: (f64, f64),
    config: &LidarConfig,
    rng: &mut StdRng,
    points: &mut Vec<Point3>,
) {
    let (x_min, x_max) = x_range;
    let (y_min, y_max) = y_range;
    // 2. Ground returns: density falls with range from the sensor, which sits
    //    at the origin. Sample ranges with a decaying distribution.
    for _ in 0..config.ground_points {
        let x = rng.gen_range(x_min..x_max);
        let y = rng.gen_range(y_min..y_max);
        let range = (x * x + y * y).sqrt().max(1.0);
        // Keep the point with probability proportional to 1/range, emulating
        // ring spacing that grows with distance.
        let keep_prob = (8.0 / range).min(1.0);
        if rng.gen_bool(keep_prob) {
            let z = -1.6 + rng.gen_range(-0.05..0.05);
            points.push(Point3::with_intensity(x, y, z, rng.gen_range(0.05..0.3)));
        }
    }

    // 3. Clutter clusters.
    for _ in 0..config.clutter_clusters {
        let cx = rng.gen_range(x_min..x_max);
        let cy = rng.gen_range(y_min..y_max);
        let cluster_size = config.clutter_points / config.clutter_clusters.max(1);
        for _ in 0..cluster_size {
            let x = cx + rng.gen_range(-1.5..1.5);
            let y = cy + rng.gen_range(-1.5..1.5);
            let z = rng.gen_range(-1.6..1.5);
            if x >= x_min && x < x_max && y >= y_min && y < y_max {
                points.push(Point3::with_intensity(x, y, z, rng.gen_range(0.1..0.6)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{ObjectClass, SceneObject};
    use crate::scene::{Scene, SceneConfig, SceneGenerator};

    fn test_scene() -> Scene {
        SceneGenerator::new(SceneConfig::kitti_like(), 5).generate()
    }

    #[test]
    fn sampling_is_deterministic() {
        let scene = test_scene();
        let cfg = LidarConfig::kitti_like();
        let a = sample_scene(&scene, &cfg, 99);
        let b = sample_scene(&scene, &cfg, 99);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn points_stay_inside_detection_range() {
        let scene = test_scene();
        let cfg = LidarConfig::kitti_like();
        let pts = sample_scene(&scene, &cfg, 1);
        let (x_min, x_max) = scene.config().x_range;
        let (y_min, y_max) = scene.config().y_range;
        for p in &pts {
            assert!(p.x >= x_min && p.x < x_max);
            assert!(p.y >= y_min && p.y < y_max);
        }
    }

    #[test]
    fn object_surfaces_receive_points() {
        let obj = SceneObject::at(ObjectClass::Car, 10.0, 0.0, 0.3);
        let scene = Scene::from_objects(SceneConfig::kitti_like(), vec![obj]);
        let cfg = LidarConfig::kitti_like();
        let pts = sample_scene(&scene, &cfg, 3);
        // Expand the box slightly to tolerate surface jitter.
        let near_object = pts
            .iter()
            .filter(|p| (p.x - 10.0).abs() < 3.0 && p.y.abs() < 3.0 && p.z > -1.7 && p.z < 1.0)
            .count();
        assert!(
            near_object > 50,
            "expected dense car returns, got {near_object}"
        );
    }

    #[test]
    fn nearby_ground_is_denser_than_far_ground() {
        let scene = Scene::from_objects(SceneConfig::kitti_like(), vec![]);
        let cfg = LidarConfig::kitti_like();
        let pts = sample_scene(&scene, &cfg, 17);
        // Compare equal-area corridors (10 m x 10 m) so the test measures
        // density rather than total annulus area.
        let near = pts
            .iter()
            .filter(|p| p.y.abs() < 5.0 && p.x >= 5.0 && p.x < 15.0)
            .count();
        let far = pts
            .iter()
            .filter(|p| p.y.abs() < 5.0 && p.x >= 55.0 && p.x < 65.0)
            .count();
        assert!(near > far, "near={near} far={far}");
    }

    #[test]
    fn split_samplers_are_deterministic_and_disjoint_streams() {
        let scene = test_scene();
        let cfg = LidarConfig::kitti_like();
        let a = sample_object_returns(&scene, &cfg, 5);
        let b = sample_object_returns(&scene, &cfg, 5);
        assert_eq!(a, b);
        let (xr, yr) = (scene.config().x_range, scene.config().y_range);
        let g = sample_background(xr, yr, &cfg, 5);
        let h = sample_background(xr, yr, &cfg, 5);
        assert_eq!(g, h);
        assert!(!a.is_empty() && !g.is_empty());
        // The split samplers run on their own salted streams, so neither
        // reproduces the head of the combined `sample_scene` stream.
        let combined = sample_scene(&scene, &cfg, 5);
        assert_ne!(combined[0], a[0]);
    }

    #[test]
    fn frame_point_count_is_realistic() {
        let scene = test_scene();
        let pts = sample_scene(&scene, &LidarConfig::kitti_like(), 7);
        assert!(pts.len() > 5_000, "got {}", pts.len());
        assert!(pts.len() < 120_000, "got {}", pts.len());
    }
}
