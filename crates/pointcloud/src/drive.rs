//! Multi-frame drive scenarios: deterministic sequences of frames whose
//! object density evolves over time.
//!
//! The paper evaluates single synthetic frames; a real deployment sees a
//! *drive* — tens of consecutive LiDAR sweeps whose occupancy rises and falls
//! as the vehicle moves between empty road and dense intersections. Because
//! SPADE's benefit tracks activation sparsity (and the per-layer IOPR drifts
//! with occupancy), sweeping hardware configurations against a single frame
//! over- or under-states the win. [`DriveScenario`] generates a seeded frame
//! sequence with a controllable density profile so design-space exploration
//! can aggregate over a whole drive instead of one static frame.

use crate::dataset::{DatasetPreset, Frame};
use serde::{Deserialize, Serialize};

/// How scene density (object count) evolves across the frames of a drive.
///
/// The factor returned by [`DensityProfile::factor`] scales the preset's
/// `min_objects`/`max_objects` bounds for each frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DensityProfile {
    /// Density stays at the preset's baseline for every frame.
    Constant,
    /// Density ramps linearly from `start` to `end` across the drive —
    /// e.g. `start: 0.5, end: 2.0` models leaving an empty suburb and
    /// arriving downtown.
    Ramp {
        /// Density factor at the first frame.
        start: f64,
        /// Density factor at the last frame.
        end: f64,
    },
    /// Density rises from `base` to `peak` at the midpoint and falls back —
    /// passing through a busy intersection.
    Peak {
        /// Density factor at the first and last frames.
        base: f64,
        /// Density factor at the midpoint of the drive.
        peak: f64,
    },
}

impl DensityProfile {
    /// The density factor for frame `index` of a drive of `num_frames`.
    ///
    /// Factors are clamped to `[0.05, 10.0]` so a misconfigured profile can
    /// never produce an empty or absurdly dense scene.
    #[must_use]
    pub fn factor(&self, index: usize, num_frames: usize) -> f64 {
        let t = if num_frames <= 1 {
            0.0
        } else {
            index as f64 / (num_frames - 1) as f64
        };
        let raw = match self {
            DensityProfile::Constant => 1.0,
            DensityProfile::Ramp { start, end } => start + (end - start) * t,
            DensityProfile::Peak { base, peak } => {
                // Triangle profile: base -> peak at t = 0.5 -> base.
                let up = 1.0 - (2.0 * t - 1.0).abs();
                base + (peak - base) * up
            }
        };
        raw.clamp(0.05, 10.0)
    }
}

/// Configuration of a [`DriveScenario`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriveScenarioConfig {
    /// Number of frames in the drive.
    pub num_frames: usize,
    /// Base seed; each frame derives its own seed from it, so the whole
    /// drive is reproducible from this one value.
    pub base_seed: u64,
    /// How density evolves over the drive.
    pub profile: DensityProfile,
}

impl DriveScenarioConfig {
    /// A short drive with the given frame count and seed at constant density.
    #[must_use]
    pub fn constant(num_frames: usize, base_seed: u64) -> Self {
        Self {
            num_frames,
            base_seed,
            profile: DensityProfile::Constant,
        }
    }
}

/// One frame of a drive: the generated [`Frame`] plus where in the drive it
/// sits and the density factor it was generated with.
#[derive(Debug, Clone)]
pub struct DriveFrame {
    /// Position in the drive (0-based).
    pub index: usize,
    /// Density factor applied to the preset's object-count bounds.
    pub density_factor: f64,
    /// The generated frame.
    pub frame: Frame,
}

/// A deterministic multi-frame drive over one dataset preset.
///
/// # Example
///
/// ```
/// use spade_pointcloud::{DatasetPreset, DensityProfile, DriveScenario, DriveScenarioConfig};
///
/// let scenario = DriveScenario::new(
///     DatasetPreset::kitti_like(),
///     DriveScenarioConfig {
///         num_frames: 5,
///         base_seed: 42,
///         profile: DensityProfile::Ramp { start: 0.5, end: 2.0 },
///     },
/// );
/// let frames = scenario.frames();
/// assert_eq!(frames.len(), 5);
/// // Density factors are strictly increasing along the ramp.
/// assert!(frames[4].density_factor > frames[0].density_factor);
/// ```
#[derive(Debug, Clone)]
pub struct DriveScenario {
    preset: DatasetPreset,
    config: DriveScenarioConfig,
}

impl DriveScenario {
    /// Creates a scenario over `preset` with an explicit configuration.
    #[must_use]
    pub fn new(preset: DatasetPreset, config: DriveScenarioConfig) -> Self {
        Self { preset, config }
    }

    /// A suburb-to-downtown drive: density ramps from half to double the
    /// preset baseline.
    #[must_use]
    pub fn urban_approach(preset: DatasetPreset, num_frames: usize, base_seed: u64) -> Self {
        Self::new(
            preset,
            DriveScenarioConfig {
                num_frames,
                base_seed,
                profile: DensityProfile::Ramp {
                    start: 0.5,
                    end: 2.0,
                },
            },
        )
    }

    /// The dataset preset the drive runs over.
    #[must_use]
    pub const fn preset(&self) -> &DatasetPreset {
        &self.preset
    }

    /// The scenario configuration.
    #[must_use]
    pub const fn config(&self) -> &DriveScenarioConfig {
        &self.config
    }

    /// Generates frame `index` of the drive.
    ///
    /// Each frame's seed is derived from the base seed and the index, so
    /// frames can be generated independently and in any order.
    #[must_use]
    pub fn generate_frame(&self, index: usize) -> DriveFrame {
        let factor = self
            .config
            .profile
            .factor(index, self.config.num_frames.max(1));
        let mut scene_cfg = self.preset.scene_config();
        scene_cfg.min_objects = ((scene_cfg.min_objects as f64 * factor).round() as usize).max(1);
        scene_cfg.max_objects =
            ((scene_cfg.max_objects as f64 * factor).round() as usize).max(scene_cfg.min_objects);
        // Large odd stride keeps per-frame seed streams disjoint from the
        // `generate_frames` batch convention (base + i * 1000).
        let seed = self.config.base_seed.wrapping_add(index as u64 * 7919);
        DriveFrame {
            index,
            density_factor: factor,
            frame: self
                .preset
                .generate_frame_with_scene_config(scene_cfg, seed),
        }
    }

    /// Generates every frame of the drive in order.
    #[must_use]
    pub fn frames(&self) -> Vec<DriveFrame> {
        (0..self.config.num_frames)
            .map(|i| self.generate_frame(i))
            .collect()
    }

    /// BEV occupancy of already-generated frames — the quantity whose drift
    /// across the drive exercises IOPR drift in the backbone.
    ///
    /// Takes `&[DriveFrame]` so callers that already hold the drive's frames
    /// (every sweep does) read occupancy off them instead of regenerating
    /// the whole drive.
    #[must_use]
    pub fn occupancy_of(frames: &[DriveFrame]) -> Vec<f64> {
        frames.iter().map(|f| f.frame.pillars.occupancy()).collect()
    }

    /// BEV occupancy of every frame of the drive. Convenience wrapper that
    /// generates the frames and discards them; when the frames are needed
    /// too, call [`DriveScenario::frames`] once and use
    /// [`DriveScenario::occupancy_of`] so each frame is built only once.
    #[must_use]
    pub fn occupancy_series(&self) -> Vec<f64> {
        Self::occupancy_of(&self.frames())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_is_deterministic_for_a_seed() {
        let scenario = DriveScenario::urban_approach(DatasetPreset::kitti_like(), 4, 9);
        let a = scenario.frames();
        let b = scenario.frames();
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa.frame.num_points, fb.frame.num_points);
            assert_eq!(
                fa.frame.pillars.active_coords,
                fb.frame.pillars.active_coords
            );
        }
    }

    #[test]
    fn ramp_profile_grows_object_count() {
        // With a 0.5 -> 2.0 ramp the object-count ranges of the first and
        // last frames are disjoint (KITTI-like 8..=24 becomes 4..=12 vs.
        // 16..=48), so the comparison holds for every seed.
        let scenario = DriveScenario::urban_approach(DatasetPreset::kitti_like(), 6, 3);
        let frames = scenario.frames();
        let first = frames.first().unwrap().frame.scene.objects().len();
        let last = frames.last().unwrap().frame.scene.objects().len();
        assert!(last > first, "last {last} should exceed first {first}");
    }

    #[test]
    fn occupancy_drifts_with_density() {
        let scenario = DriveScenario::urban_approach(DatasetPreset::kitti_like(), 5, 17);
        let occ = scenario.occupancy_series();
        assert_eq!(occ.len(), 5);
        assert!(occ.iter().all(|&o| o > 0.0));
        // The dense end of the drive occupies more of the BEV grid.
        assert!(occ[4] > occ[0], "occupancy should rise: {occ:?}");
    }

    #[test]
    fn occupancy_of_reuses_generated_frames() {
        let scenario = DriveScenario::urban_approach(DatasetPreset::kitti_like(), 4, 17);
        let frames = scenario.frames();
        // Reading occupancy off already-generated frames matches the
        // regenerate-everything convenience path exactly.
        assert_eq!(
            DriveScenario::occupancy_of(&frames),
            scenario.occupancy_series()
        );
        assert!(DriveScenario::occupancy_of(&[]).is_empty());
    }

    #[test]
    fn profile_factors_are_clamped_and_shaped() {
        assert_eq!(DensityProfile::Constant.factor(3, 10), 1.0);
        let ramp = DensityProfile::Ramp {
            start: 1.0,
            end: 3.0,
        };
        assert!((ramp.factor(0, 5) - 1.0).abs() < 1e-12);
        assert!((ramp.factor(4, 5) - 3.0).abs() < 1e-12);
        let peak = DensityProfile::Peak {
            base: 1.0,
            peak: 2.0,
        };
        assert!(peak.factor(2, 5) > peak.factor(0, 5));
        assert!((peak.factor(0, 5) - peak.factor(4, 5)).abs() < 1e-12);
        // Clamping guards absurd profiles.
        let wild = DensityProfile::Ramp {
            start: -5.0,
            end: 100.0,
        };
        assert!(wild.factor(0, 2) >= 0.05);
        assert!(wild.factor(1, 2) <= 10.0);
    }

    #[test]
    fn single_frame_drive_uses_start_of_profile() {
        let p = DensityProfile::Ramp {
            start: 0.5,
            end: 2.0,
        };
        assert!((p.factor(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn frames_can_be_generated_out_of_order() {
        let scenario = DriveScenario::urban_approach(DatasetPreset::kitti_like(), 4, 21);
        let all = scenario.frames();
        let third = scenario.generate_frame(2);
        assert_eq!(
            all[2].frame.pillars.active_coords,
            third.frame.pillars.active_coords
        );
    }
}
