//! Multi-frame drive scenarios: deterministic sequences of frames whose
//! object density evolves over time, with optional scripted events and a
//! persistent frame-to-frame world.
//!
//! The paper evaluates single synthetic frames; a real deployment sees a
//! *drive* — tens of consecutive LiDAR sweeps whose occupancy rises and falls
//! as the vehicle moves between empty road and dense intersections. Because
//! SPADE's benefit tracks activation sparsity (and the per-layer IOPR drifts
//! with occupancy), sweeping hardware configurations against a single frame
//! over- or under-states the win. [`DriveScenario`] generates a seeded frame
//! sequence with a controllable density profile so design-space exploration
//! can aggregate over a whole drive instead of one static frame.
//!
//! Two generation modes exist, selected by
//! [`DriveScenarioConfig::persistence`]:
//!
//! * [`ScenePersistence::Independent`] (the legacy default) samples an
//!   independent scene per frame — consecutive frames share no objects, so
//!   inter-frame pillar overlap is near the random baseline.
//! * [`ScenePersistence::Persistent`] evolves one
//!   [`crate::world::PersistentWorld`] across the drive: objects carry
//!   per-class velocities, advance frame-to-frame, despawn when they leave
//!   the detection range, and spawn at scripted/profile-driven rates, while
//!   the static background (ground + clutter returns) is sampled once per
//!   drive — so consecutive frames share most of their active pillars. The
//!   [`DriveFrame::pillar_overlap`] metric quantifies exactly that temporal
//!   locality, which future caching/serving backends can exploit.
//!
//! Scripted [`DriveEvent`]s on an [`EventTimeline`] layer traffic context
//! over the [`DensityProfile`]: stopped traffic freezes and swells the
//! scene, a tunnel empties it, and a crossing wave sends pedestrians and
//! cyclists across the road corridor. [`NamedScenario`] bundles curated
//! profile + timeline + persistence combinations behind the CLI names the
//! `dse` experiment accepts (`--scenario stop-and-go`).

use crate::dataset::{DatasetPreset, Frame};
use crate::pillarize::pillarize;
use crate::world::{PersistentWorld, WorldStep};
use crate::{lidar, Point3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How scene density (object count) evolves across the frames of a drive.
///
/// The factor returned by [`DensityProfile::factor`] scales the preset's
/// `min_objects`/`max_objects` bounds for each frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DensityProfile {
    /// Density stays at the preset's baseline for every frame.
    Constant,
    /// Density ramps linearly from `start` to `end` across the drive —
    /// e.g. `start: 0.5, end: 2.0` models leaving an empty suburb and
    /// arriving downtown.
    Ramp {
        /// Density factor at the first frame.
        start: f64,
        /// Density factor at the last frame.
        end: f64,
    },
    /// Density rises from `base` to `peak` at the midpoint and falls back —
    /// passing through a busy intersection.
    Peak {
        /// Density factor at the first and last frames.
        base: f64,
        /// Density factor at the midpoint of the drive.
        peak: f64,
    },
}

impl DensityProfile {
    /// The density factor for frame `index` of a drive of `num_frames`.
    ///
    /// Factors are clamped to `[0.05, 10.0]` so a misconfigured profile can
    /// never produce an empty or absurdly dense scene, and the drive
    /// position `t` is clamped to `[0, 1]` so an `index` beyond the drive
    /// end (reachable through the public out-of-order
    /// [`DriveScenario::generate_frame`]) holds the profile's end value
    /// instead of extrapolating a `Ramp` past `end`.
    #[must_use]
    pub fn factor(&self, index: usize, num_frames: usize) -> f64 {
        let t = if num_frames <= 1 {
            0.0
        } else {
            (index as f64 / (num_frames - 1) as f64).min(1.0)
        };
        let raw = match self {
            DensityProfile::Constant => 1.0,
            DensityProfile::Ramp { start, end } => start + (end - start) * t,
            DensityProfile::Peak { base, peak } => {
                // Triangle profile: base -> peak at t = 0.5 -> base.
                let up = 1.0 - (2.0 * t - 1.0).abs();
                base + (peak - base) * up
            }
        };
        raw.clamp(0.05, 10.0)
    }
}

/// A scripted traffic event overriding the ambient density profile while it
/// is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriveEvent {
    /// Traffic halts: object displacement freezes and the queue swells the
    /// scene density.
    StoppedTraffic,
    /// The drive enters a tunnel: the frame empties down to the density
    /// floor (the background road returns remain).
    Tunnel,
    /// A wave of pedestrians and cyclists crosses the road corridor
    /// laterally.
    CrossingWave,
}

impl DriveEvent {
    /// Multiplier the event applies to the profile's density factor.
    #[must_use]
    pub const fn density_multiplier(self) -> f64 {
        match self {
            DriveEvent::StoppedTraffic => 1.6,
            DriveEvent::Tunnel => 0.02,
            DriveEvent::CrossingWave => 1.0,
        }
    }

    /// Multiplier the event applies to object displacement per frame.
    #[must_use]
    pub const fn speed_multiplier(self) -> f64 {
        match self {
            DriveEvent::StoppedTraffic => 0.0,
            DriveEvent::Tunnel | DriveEvent::CrossingWave => 1.0,
        }
    }

    /// Extra lateral pedestrian/cyclist spawns per active frame.
    #[must_use]
    pub const fn crossing_spawns_per_frame(self) -> usize {
        match self {
            DriveEvent::CrossingWave => 3,
            DriveEvent::StoppedTraffic | DriveEvent::Tunnel => 0,
        }
    }

    /// Short display label.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            DriveEvent::StoppedTraffic => "stopped-traffic",
            DriveEvent::Tunnel => "tunnel",
            DriveEvent::CrossingWave => "crossing-wave",
        }
    }
}

/// An event active over the half-open frame range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// The scripted event.
    pub event: DriveEvent,
    /// First frame (inclusive) the event is active at.
    pub start: usize,
    /// First frame (exclusive) after the event ends.
    pub end: usize,
}

impl TimedEvent {
    /// Whether the event is active at `index`.
    #[must_use]
    pub const fn active_at(&self, index: usize) -> bool {
        index >= self.start && index < self.end
    }
}

/// The scripted events of a drive, layered over its [`DensityProfile`].
///
/// Multipliers of simultaneously active events compose: density multipliers
/// multiply, the slowest speed multiplier wins, crossing spawns add up.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EventTimeline {
    events: Vec<TimedEvent>,
}

impl EventTimeline {
    /// A timeline with no scripted events (the legacy behaviour).
    #[must_use]
    pub const fn empty() -> Self {
        Self { events: Vec::new() }
    }

    /// A timeline over explicit timed events.
    #[must_use]
    pub fn new(events: Vec<TimedEvent>) -> Self {
        Self { events }
    }

    /// Whether the timeline holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Every scripted event.
    #[must_use]
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// The events active at a frame.
    pub fn active_at(&self, index: usize) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter().filter(move |e| e.active_at(index))
    }

    /// Product of the active events' density multipliers (1.0 when idle).
    #[must_use]
    pub fn density_multiplier(&self, index: usize) -> f64 {
        self.active_at(index)
            .map(|e| e.event.density_multiplier())
            .product()
    }

    /// Minimum of the active events' speed multipliers (1.0 when idle).
    #[must_use]
    pub fn speed_multiplier(&self, index: usize) -> f64 {
        self.active_at(index)
            .map(|e| e.event.speed_multiplier())
            .fold(1.0, f64::min)
    }

    /// Sum of the active events' lateral crossing spawns.
    #[must_use]
    pub fn crossing_spawns(&self, index: usize) -> usize {
        self.active_at(index)
            .map(|e| e.event.crossing_spawns_per_frame())
            .sum()
    }

    /// Labels of the events active at a frame.
    #[must_use]
    pub fn labels_at(&self, index: usize) -> Vec<&'static str> {
        self.active_at(index).map(|e| e.event.label()).collect()
    }
}

/// Whether frames of a drive share world state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScenePersistence {
    /// Every frame samples an independent scene (the legacy behaviour):
    /// consecutive frames share no objects.
    Independent,
    /// One [`PersistentWorld`] evolves across the drive and the static
    /// background is sampled once, so consecutive frames share most active
    /// pillars.
    Persistent {
        /// Seconds between consecutive frames (LiDAR sweeps at 10 Hz → 0.1).
        frame_interval_s: f64,
    },
}

impl ScenePersistence {
    /// The default inter-frame interval: a 10 Hz LiDAR sweep.
    pub const DEFAULT_FRAME_INTERVAL_S: f64 = 0.1;

    /// The persistent mode at the default 10 Hz frame interval.
    #[must_use]
    pub const fn persistent() -> Self {
        Self::Persistent {
            frame_interval_s: Self::DEFAULT_FRAME_INTERVAL_S,
        }
    }

    /// Whether frames share world state.
    #[must_use]
    pub const fn is_persistent(&self) -> bool {
        matches!(self, Self::Persistent { .. })
    }
}

/// Configuration of a [`DriveScenario`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveScenarioConfig {
    /// Number of frames in the drive.
    pub num_frames: usize,
    /// Base seed; each frame derives its own seed from it, so the whole
    /// drive is reproducible from this one value.
    pub base_seed: u64,
    /// How ambient density evolves over the drive.
    pub profile: DensityProfile,
    /// Scripted events layered over the profile (empty by default).
    ///
    /// Under [`ScenePersistence::Independent`] only the events' *density*
    /// multipliers apply (each frame is a fresh scene, so there is no
    /// motion to freeze and no world for crossing agents to persist in);
    /// the speed and crossing-spawn effects need
    /// [`ScenePersistence::Persistent`]. [`DriveFrame::active_events`]
    /// reports scripted activity in either mode.
    pub events: EventTimeline,
    /// Whether frames share world state (independent by default, which
    /// preserves the legacy byte-exact frame stream).
    pub persistence: ScenePersistence,
}

impl Default for DriveScenarioConfig {
    fn default() -> Self {
        Self {
            num_frames: 5,
            base_seed: 0,
            profile: DensityProfile::Constant,
            events: EventTimeline::empty(),
            persistence: ScenePersistence::Independent,
        }
    }
}

impl DriveScenarioConfig {
    /// A short drive with the given frame count and seed at constant density.
    #[must_use]
    pub fn constant(num_frames: usize, base_seed: u64) -> Self {
        Self {
            num_frames,
            base_seed,
            ..Self::default()
        }
    }

    /// The seed frame `index` is generated from.
    ///
    /// This is the single definition of the per-frame seed stream (the large
    /// odd stride keeps it disjoint from the `generate_frames` batch
    /// convention of `base + i * 1000`); the DSE sweep reuses it instead of
    /// duplicating the constant.
    #[must_use]
    pub const fn frame_seed(&self, index: usize) -> u64 {
        self.base_seed.wrapping_add(index as u64 * 7919)
    }

    /// The seed model runs on frame `index` derive their RNG from.
    ///
    /// A SplitMix64 finalizer decorrelates this stream from
    /// [`DriveScenarioConfig::frame_seed`]: the model-run RNG (pruning
    /// noise, importance scores) must not replay the exact frame-generation
    /// stream, or scene randomness and model randomness move in lockstep
    /// across the sweep.
    #[must_use]
    pub const fn model_seed(&self, index: usize) -> u64 {
        let mut z = self.frame_seed(index) ^ 0x9e37_79b9_7f4a_7c15;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The seed the *pruning/importance* randomness of a model run on frame
    /// `index` uses.
    ///
    /// On a persistent drive consecutive frames share most of their active
    /// pillars, and the temporal delta path exploits exactly that — but a
    /// per-frame pruning seed would re-randomise the SpConv-P importance
    /// noise every frame, churning the pruned sets (and everything
    /// downstream) far more than the scene itself changes. Persistent drives
    /// therefore hold the pruning seed fixed at frame 0's
    /// [`DriveScenarioConfig::model_seed`] (the noise models a property of
    /// the deployed network, not of the sweep), while independent drives
    /// keep the historical per-frame stream byte-for-byte.
    #[must_use]
    pub const fn pruning_seed(&self, index: usize) -> u64 {
        if self.persistence.is_persistent() {
            self.model_seed(0)
        } else {
            self.model_seed(index)
        }
    }

    /// The combined density factor at a frame: the profile's factor times
    /// the active events' multipliers, clamped to the same `[0.05, 10.0]`
    /// guard band as [`DensityProfile::factor`].
    #[must_use]
    pub fn density_factor(&self, index: usize) -> f64 {
        let profile = self.profile.factor(index, self.num_frames.max(1));
        (profile * self.events.density_multiplier(index)).clamp(0.05, 10.0)
    }
}

/// Curated scenario presets selectable by name from the `dse` experiment's
/// command line (`--scenario stop-and-go`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NamedScenario {
    /// The legacy i.i.d. baseline: constant density, no events, no
    /// persistence — consecutive frames share no objects.
    Constant,
    /// A persistent suburb-to-downtown drive: density ramps from half to
    /// double the preset baseline while the world persists across frames.
    Urban,
    /// Persistent traffic that halts twice (queues swell, displacement
    /// freezes) with a pedestrian crossing wave during the first stop.
    StopAndGo,
    /// A persistent drive through a tunnel that empties the mid-drive
    /// frames down to the density floor.
    Tunnel,
}

impl NamedScenario {
    /// Every named scenario, in CLI listing order.
    pub const ALL: [NamedScenario; 4] = [
        NamedScenario::Constant,
        NamedScenario::Urban,
        NamedScenario::StopAndGo,
        NamedScenario::Tunnel,
    ];

    /// The CLI name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            NamedScenario::Constant => "constant",
            NamedScenario::Urban => "urban",
            NamedScenario::StopAndGo => "stop-and-go",
            NamedScenario::Tunnel => "tunnel",
        }
    }

    /// Parses a CLI name (`constant | urban | stop-and-go | tunnel`).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// The scenario's drive configuration over `num_frames` frames.
    #[must_use]
    pub fn config(self, num_frames: usize, base_seed: u64) -> DriveScenarioConfig {
        let n = num_frames.max(1);
        let (profile, events, persistence) = match self {
            NamedScenario::Constant => (
                DensityProfile::Constant,
                EventTimeline::empty(),
                ScenePersistence::Independent,
            ),
            NamedScenario::Urban => (
                DensityProfile::Ramp {
                    start: 0.5,
                    end: 2.0,
                },
                EventTimeline::empty(),
                ScenePersistence::persistent(),
            ),
            NamedScenario::StopAndGo => {
                // Two stops with free flow between them; pedestrians cross
                // while the first queue is held.
                let first = TimedEvent {
                    event: DriveEvent::StoppedTraffic,
                    start: n / 4,
                    end: (n / 2).max(n / 4 + 1),
                };
                let crossing = TimedEvent {
                    event: DriveEvent::CrossingWave,
                    start: first.start,
                    end: first.end,
                };
                let second = TimedEvent {
                    event: DriveEvent::StoppedTraffic,
                    start: n * 3 / 4,
                    end: n,
                };
                (
                    DensityProfile::Constant,
                    EventTimeline::new(vec![first, crossing, second]),
                    ScenePersistence::persistent(),
                )
            }
            NamedScenario::Tunnel => (
                DensityProfile::Constant,
                EventTimeline::new(vec![TimedEvent {
                    event: DriveEvent::Tunnel,
                    start: n / 3,
                    end: (n * 2 / 3).max(n / 3 + 1),
                }]),
                ScenePersistence::persistent(),
            ),
        };
        DriveScenarioConfig {
            num_frames,
            base_seed,
            profile,
            events,
            persistence,
        }
    }
}

impl std::fmt::Display for NamedScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One frame of a drive: the generated [`Frame`] plus where in the drive it
/// sits, the density factor it was generated with, the events active at it,
/// and its temporal-locality metric.
#[derive(Debug, Clone)]
pub struct DriveFrame {
    /// Position in the drive (0-based).
    pub index: usize,
    /// Density factor applied to the preset's object-count bounds (profile ×
    /// active event multipliers).
    pub density_factor: f64,
    /// Labels of the scripted events active at this frame (what the
    /// timeline scheduled — on an independent drive only their density
    /// multipliers take effect, see [`DriveScenarioConfig::events`]).
    pub active_events: Vec<&'static str>,
    /// Active-pillar overlap (Jaccard) with the *previous* frame of the
    /// drive — the temporal locality a caching backend could exploit.
    /// `None` for the first frame and for frames generated out of order via
    /// [`DriveScenario::generate_frame`].
    pub pillar_overlap: Option<f64>,
    /// The generated frame.
    pub frame: Frame,
}

/// A deterministic multi-frame drive over one dataset preset.
///
/// # Example
///
/// ```
/// use spade_pointcloud::{DatasetPreset, DensityProfile, DriveScenario, DriveScenarioConfig};
///
/// let scenario = DriveScenario::new(
///     DatasetPreset::kitti_like(),
///     DriveScenarioConfig {
///         num_frames: 5,
///         base_seed: 42,
///         profile: DensityProfile::Ramp { start: 0.5, end: 2.0 },
///         ..DriveScenarioConfig::default()
///     },
/// );
/// let frames = scenario.frames();
/// assert_eq!(frames.len(), 5);
/// // Density factors are strictly increasing along the ramp.
/// assert!(frames[4].density_factor > frames[0].density_factor);
/// ```
#[derive(Debug, Clone)]
pub struct DriveScenario {
    preset: DatasetPreset,
    config: DriveScenarioConfig,
}

impl DriveScenario {
    /// Creates a scenario over `preset` with an explicit configuration.
    #[must_use]
    pub fn new(preset: DatasetPreset, config: DriveScenarioConfig) -> Self {
        Self { preset, config }
    }

    /// A named scenario preset over `preset`.
    #[must_use]
    pub fn named(
        preset: DatasetPreset,
        scenario: NamedScenario,
        num_frames: usize,
        base_seed: u64,
    ) -> Self {
        Self::new(preset, scenario.config(num_frames, base_seed))
    }

    /// A suburb-to-downtown drive: density ramps from half to double the
    /// preset baseline. Legacy i.i.d. sampling (for the persistent variant
    /// use [`DriveScenario::named`] with [`NamedScenario::Urban`]).
    #[must_use]
    pub fn urban_approach(preset: DatasetPreset, num_frames: usize, base_seed: u64) -> Self {
        Self::new(
            preset,
            DriveScenarioConfig {
                num_frames,
                base_seed,
                profile: DensityProfile::Ramp {
                    start: 0.5,
                    end: 2.0,
                },
                ..DriveScenarioConfig::default()
            },
        )
    }

    /// The dataset preset the drive runs over.
    #[must_use]
    pub const fn preset(&self) -> &DatasetPreset {
        &self.preset
    }

    /// The scenario configuration.
    #[must_use]
    pub const fn config(&self) -> &DriveScenarioConfig {
        &self.config
    }

    /// The seed frame `index` is generated from (see
    /// [`DriveScenarioConfig::frame_seed`]).
    #[must_use]
    pub const fn frame_seed(&self, index: usize) -> u64 {
        self.config.frame_seed(index)
    }

    /// The decorrelated seed model runs on frame `index` use (see
    /// [`DriveScenarioConfig::model_seed`]).
    #[must_use]
    pub const fn model_seed(&self, index: usize) -> u64 {
        self.config.model_seed(index)
    }

    /// The pruning seed of frame `index` (see
    /// [`DriveScenarioConfig::pruning_seed`]).
    #[must_use]
    pub const fn pruning_seed(&self, index: usize) -> u64 {
        self.config.pruning_seed(index)
    }

    /// Generates frame `index` of the drive.
    ///
    /// For independent (legacy) drives each frame's seed is derived from the
    /// base seed and the index, so frames can be generated independently and
    /// in any order. For persistent drives the world must be evolved from
    /// frame 0, so an out-of-order call pays `index` world steps (cheap) and
    /// one frame materialisation (LiDAR sampling + pillarisation happen only
    /// for the requested frame); generate whole drives with
    /// [`DriveScenario::frames`] instead. Frames returned by this method
    /// carry no [`DriveFrame::pillar_overlap`] (the metric needs the
    /// previous frame).
    #[must_use]
    pub fn generate_frame(&self, index: usize) -> DriveFrame {
        match self.config.persistence {
            ScenePersistence::Independent => self.independent_frame(index),
            ScenePersistence::Persistent { .. } => self
                .persistent_frames(index + 1, index)
                .pop()
                .expect("persistent_frames emits the requested frame"),
        }
    }

    /// Generates every frame of the drive in order, with
    /// [`DriveFrame::pillar_overlap`] filled in for frames 1..n.
    #[must_use]
    pub fn frames(&self) -> Vec<DriveFrame> {
        let mut frames = match self.config.persistence {
            ScenePersistence::Independent => (0..self.config.num_frames)
                .map(|i| self.independent_frame(i))
                .collect(),
            ScenePersistence::Persistent { .. } => {
                self.persistent_frames(self.config.num_frames, 0)
            }
        };
        Self::annotate_overlap(&mut frames);
        frames
    }

    /// One legacy i.i.d. frame: an independent scene sampled at the frame's
    /// density factor. Byte-identical to the pre-event-timeline generator
    /// for configurations without events.
    fn independent_frame(&self, index: usize) -> DriveFrame {
        let factor = self.config.density_factor(index);
        let mut scene_cfg = self.preset.scene_config();
        scene_cfg.min_objects = ((scene_cfg.min_objects as f64 * factor).round() as usize).max(1);
        scene_cfg.max_objects =
            ((scene_cfg.max_objects as f64 * factor).round() as usize).max(scene_cfg.min_objects);
        let seed = self.config.frame_seed(index);
        DriveFrame {
            index,
            density_factor: factor,
            active_events: self.config.events.labels_at(index),
            pillar_overlap: None,
            frame: self
                .preset
                .generate_frame_with_scene_config(scene_cfg, seed),
        }
    }

    /// The first `count` frames of a persistent drive: one world evolved
    /// step by step, object returns re-sampled per frame, background sampled
    /// once for the whole drive. Frames before `emit_from` advance the
    /// world but skip LiDAR sampling and pillarisation entirely, so an
    /// out-of-order [`DriveScenario::generate_frame`] pays only cheap world
    /// steps for the prefix it discards.
    fn persistent_frames(&self, count: usize, emit_from: usize) -> Vec<DriveFrame> {
        let ScenePersistence::Persistent { frame_interval_s } = self.config.persistence else {
            unreachable!("persistent_frames is only called in persistent mode");
        };
        let scene_cfg = self.preset.scene_config();
        let lidar_cfg = self.preset.lidar_config();
        let pillar_cfg = self.preset.pillar_config();
        // The static world (ground carpet + clutter) does not move between
        // sweeps: sample it once per drive on the base seed's stream.
        let background: Vec<Point3> = lidar::sample_background(
            scene_cfg.x_range,
            scene_cfg.y_range,
            &lidar_cfg,
            self.config.base_seed,
        );
        let mut world = PersistentWorld::new(scene_cfg.clone(), frame_interval_s);
        let mut frames = Vec::with_capacity(count.saturating_sub(emit_from));
        for index in 0..count {
            let factor = self.config.density_factor(index);
            let min = ((scene_cfg.min_objects as f64 * factor).round() as usize).max(1);
            let max = ((scene_cfg.max_objects as f64 * factor).round() as usize).max(min);
            let seed = self.config.frame_seed(index);
            // Mirror the i.i.d. generator's per-frame object-count draw.
            let mut count_rng = StdRng::seed_from_u64(seed ^ 0x7a26_e701);
            let target_count = count_rng.gen_range(min..=max);
            world.step(&WorldStep {
                target_count,
                speed_multiplier: self.config.events.speed_multiplier(index),
                crossing_spawns: self.config.events.crossing_spawns(index),
                seed,
            });
            if index < emit_from {
                continue;
            }
            let scene = world.scene();
            let mut points = lidar::sample_object_returns(&scene, &lidar_cfg, seed.wrapping_add(1));
            points.extend_from_slice(&background);
            let pillars = pillarize(&points, &pillar_cfg);
            frames.push(DriveFrame {
                index,
                density_factor: factor,
                active_events: self.config.events.labels_at(index),
                pillar_overlap: None,
                frame: Frame {
                    scene,
                    num_points: points.len(),
                    pillars,
                },
            });
        }
        frames
    }

    /// Fills [`DriveFrame::pillar_overlap`] from consecutive pairs of an
    /// already-generated frame sequence (a pure function of the frames, so
    /// it applies to any generation mode — the DSE sweep calls it after
    /// fanning frame generation across its worker pool).
    pub fn annotate_overlap(frames: &mut [DriveFrame]) {
        for i in 1..frames.len() {
            let overlap = frames[i - 1]
                .frame
                .pillars
                .pillar_overlap(&frames[i].frame.pillars);
            frames[i].pillar_overlap = Some(overlap);
        }
    }

    /// Mean consecutive-frame active-pillar overlap of a drive — the single
    /// temporal-locality number the sweep exports per workload. `0.0` for
    /// drives shorter than two frames.
    #[must_use]
    pub fn mean_overlap_of(frames: &[DriveFrame]) -> f64 {
        let overlaps: Vec<f64> = frames.iter().filter_map(|f| f.pillar_overlap).collect();
        if overlaps.is_empty() {
            0.0
        } else {
            overlaps.iter().sum::<f64>() / overlaps.len() as f64
        }
    }

    /// BEV occupancy of already-generated frames — the quantity whose drift
    /// across the drive exercises IOPR drift in the backbone.
    ///
    /// Takes `&[DriveFrame]` so callers that already hold the drive's frames
    /// (every sweep does) read occupancy off them instead of regenerating
    /// the whole drive.
    #[must_use]
    pub fn occupancy_of(frames: &[DriveFrame]) -> Vec<f64> {
        frames.iter().map(|f| f.frame.pillars.occupancy()).collect()
    }

    /// BEV occupancy of every frame of the drive. Convenience wrapper that
    /// generates the frames and discards them; when the frames are needed
    /// too, call [`DriveScenario::frames`] once and use
    /// [`DriveScenario::occupancy_of`] so each frame is built only once.
    #[must_use]
    pub fn occupancy_series(&self) -> Vec<f64> {
        Self::occupancy_of(&self.frames())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_is_deterministic_for_a_seed() {
        let scenario = DriveScenario::urban_approach(DatasetPreset::kitti_like(), 4, 9);
        let a = scenario.frames();
        let b = scenario.frames();
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa.frame.num_points, fb.frame.num_points);
            assert_eq!(
                fa.frame.pillars.active_coords,
                fb.frame.pillars.active_coords
            );
        }
    }

    #[test]
    fn ramp_profile_grows_object_count() {
        // With a 0.5 -> 2.0 ramp the object-count ranges of the first and
        // last frames are disjoint (KITTI-like 8..=24 becomes 4..=12 vs.
        // 16..=48), so the comparison holds for every seed.
        let scenario = DriveScenario::urban_approach(DatasetPreset::kitti_like(), 6, 3);
        let frames = scenario.frames();
        let first = frames.first().unwrap().frame.scene.objects().len();
        let last = frames.last().unwrap().frame.scene.objects().len();
        assert!(last > first, "last {last} should exceed first {first}");
    }

    #[test]
    fn occupancy_drifts_with_density() {
        let scenario = DriveScenario::urban_approach(DatasetPreset::kitti_like(), 5, 17);
        let occ = scenario.occupancy_series();
        assert_eq!(occ.len(), 5);
        assert!(occ.iter().all(|&o| o > 0.0));
        // The dense end of the drive occupies more of the BEV grid.
        assert!(occ[4] > occ[0], "occupancy should rise: {occ:?}");
    }

    #[test]
    fn occupancy_of_reuses_generated_frames() {
        let scenario = DriveScenario::urban_approach(DatasetPreset::kitti_like(), 4, 17);
        let frames = scenario.frames();
        // Reading occupancy off already-generated frames matches the
        // regenerate-everything convenience path exactly.
        assert_eq!(
            DriveScenario::occupancy_of(&frames),
            scenario.occupancy_series()
        );
        assert!(DriveScenario::occupancy_of(&[]).is_empty());
    }

    #[test]
    fn profile_factors_are_clamped_and_shaped() {
        assert_eq!(DensityProfile::Constant.factor(3, 10), 1.0);
        let ramp = DensityProfile::Ramp {
            start: 1.0,
            end: 3.0,
        };
        assert!((ramp.factor(0, 5) - 1.0).abs() < 1e-12);
        assert!((ramp.factor(4, 5) - 3.0).abs() < 1e-12);
        let peak = DensityProfile::Peak {
            base: 1.0,
            peak: 2.0,
        };
        assert!(peak.factor(2, 5) > peak.factor(0, 5));
        assert!((peak.factor(0, 5) - peak.factor(4, 5)).abs() < 1e-12);
        // Clamping guards absurd profiles.
        let wild = DensityProfile::Ramp {
            start: -5.0,
            end: 100.0,
        };
        assert!(wild.factor(0, 2) >= 0.05);
        assert!(wild.factor(1, 2) <= 10.0);
    }

    #[test]
    fn factor_clamps_indices_beyond_the_drive_end() {
        // Regression: `factor(index, num_frames)` with `index >= num_frames`
        // (reachable via the public out-of-order `generate_frame`) used to
        // extrapolate a Ramp beyond `end`.
        let ramp = DensityProfile::Ramp {
            start: 0.5,
            end: 2.0,
        };
        assert_eq!(ramp.factor(5, 5), ramp.factor(4, 5));
        assert_eq!(ramp.factor(500, 5), ramp.factor(4, 5));
        let peak = DensityProfile::Peak {
            base: 1.0,
            peak: 2.0,
        };
        assert_eq!(peak.factor(10, 5), peak.factor(4, 5));
    }

    #[test]
    fn single_frame_drive_uses_start_of_profile() {
        let p = DensityProfile::Ramp {
            start: 0.5,
            end: 2.0,
        };
        assert!((p.factor(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn frames_can_be_generated_out_of_order() {
        let scenario = DriveScenario::urban_approach(DatasetPreset::kitti_like(), 4, 21);
        let all = scenario.frames();
        let third = scenario.generate_frame(2);
        assert_eq!(
            all[2].frame.pillars.active_coords,
            third.frame.pillars.active_coords
        );
    }

    #[test]
    fn frame_and_model_seed_streams_are_distinct() {
        let cfg = DriveScenarioConfig::constant(8, 2024);
        // The frame stream keeps the historical derivation exactly.
        for i in 0..8 {
            assert_eq!(cfg.frame_seed(i), 2024u64.wrapping_add(i as u64 * 7919));
            assert_ne!(cfg.model_seed(i), cfg.frame_seed(i));
        }
        // The two streams stay disjoint across a realistic index range.
        let frame_seeds: Vec<u64> = (0..1000).map(|i| cfg.frame_seed(i)).collect();
        assert!((0..1000).all(|i| !frame_seeds.contains(&cfg.model_seed(i))));
    }

    #[test]
    fn pruning_seed_is_drive_stable_only_when_persistent() {
        // Independent drives keep the historical per-frame stream exactly
        // (the legacy golden CSVs depend on it)…
        let iid = DriveScenarioConfig::constant(6, 99);
        for i in 0..6 {
            assert_eq!(iid.pruning_seed(i), iid.model_seed(i));
        }
        // …while persistent drives pin pruning randomness to frame 0, so
        // frame-to-frame churn reflects the scene, not re-rolled noise.
        let sng = NamedScenario::StopAndGo.config(6, 99);
        for i in 0..6 {
            assert_eq!(sng.pruning_seed(i), sng.model_seed(0));
        }
        assert_ne!(sng.pruning_seed(3), sng.model_seed(3));
    }

    #[test]
    fn event_timeline_composes_multipliers() {
        let tl = EventTimeline::new(vec![
            TimedEvent {
                event: DriveEvent::StoppedTraffic,
                start: 2,
                end: 4,
            },
            TimedEvent {
                event: DriveEvent::CrossingWave,
                start: 3,
                end: 5,
            },
        ]);
        assert_eq!(tl.density_multiplier(0), 1.0);
        assert_eq!(tl.speed_multiplier(0), 1.0);
        assert_eq!(tl.crossing_spawns(0), 0);
        assert_eq!(tl.density_multiplier(2), 1.6);
        assert_eq!(tl.speed_multiplier(2), 0.0);
        // Both active at frame 3.
        assert_eq!(tl.density_multiplier(3), 1.6);
        assert_eq!(tl.speed_multiplier(3), 0.0);
        assert_eq!(tl.crossing_spawns(3), 3);
        assert_eq!(tl.labels_at(3), vec!["stopped-traffic", "crossing-wave"]);
        // Crossing wave alone neither slows nor swells traffic.
        assert_eq!(tl.density_multiplier(4), 1.0);
        assert_eq!(tl.speed_multiplier(4), 1.0);
        assert_eq!(tl.crossing_spawns(4), 3);
        assert!(EventTimeline::empty().is_empty());
    }

    #[test]
    fn named_scenarios_parse_and_shape_their_configs() {
        for s in NamedScenario::ALL {
            assert_eq!(NamedScenario::parse(s.name()), Some(s));
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(NamedScenario::parse("warp-drive"), None);
        let constant = NamedScenario::Constant.config(10, 1);
        assert!(!constant.persistence.is_persistent());
        assert!(constant.events.is_empty());
        let urban = NamedScenario::Urban.config(10, 1);
        assert!(urban.persistence.is_persistent());
        assert!(matches!(urban.profile, DensityProfile::Ramp { .. }));
        let sng = NamedScenario::StopAndGo.config(12, 1);
        assert!(sng.persistence.is_persistent());
        assert!(sng.events.events().len() == 3);
        assert_eq!(sng.events.speed_multiplier(3), 0.0, "first stop holds");
        let tunnel = NamedScenario::Tunnel.config(12, 1);
        assert!(tunnel.density_factor(5) < 0.1, "tunnel empties the frame");
        assert!(
            tunnel.density_factor(0) > 0.9,
            "open road before the tunnel"
        );
    }

    #[test]
    fn persistent_drive_is_deterministic_and_annotates_overlap() {
        let scenario =
            DriveScenario::named(DatasetPreset::kitti_like(), NamedScenario::Urban, 4, 2024);
        let a = scenario.frames();
        let b = scenario.frames();
        assert_eq!(a.len(), 4);
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa.frame.num_points, fb.frame.num_points);
            assert_eq!(
                fa.frame.pillars.active_coords,
                fb.frame.pillars.active_coords
            );
            assert_eq!(fa.pillar_overlap, fb.pillar_overlap);
        }
        assert!(a[0].pillar_overlap.is_none());
        assert!(a[1..].iter().all(|f| f.pillar_overlap.is_some()));
        assert!(DriveScenario::mean_overlap_of(&a) > 0.5);
    }

    #[test]
    fn persistent_out_of_order_frame_matches_the_sequential_drive() {
        let scenario =
            DriveScenario::named(DatasetPreset::kitti_like(), NamedScenario::StopAndGo, 5, 7);
        let all = scenario.frames();
        let third = scenario.generate_frame(2);
        assert_eq!(
            all[2].frame.pillars.active_coords,
            third.frame.pillars.active_coords
        );
        assert!(
            third.pillar_overlap.is_none(),
            "out-of-order carries no overlap"
        );
    }

    #[test]
    fn tunnel_scenario_empties_the_mid_drive_frames() {
        let scenario =
            DriveScenario::named(DatasetPreset::kitti_like(), NamedScenario::Tunnel, 9, 2024);
        let frames = scenario.frames();
        let objects_at = |i: usize| frames[i].frame.scene.objects().len();
        let mid = 4; // inside [3, 6)
        assert!(frames[mid].active_events.contains(&"tunnel"));
        assert!(
            objects_at(mid) < objects_at(0),
            "tunnel frame {} objects vs open road {}",
            objects_at(mid),
            objects_at(0)
        );
        assert!(objects_at(mid) <= 2);
        // Traffic returns after the tunnel.
        assert!(objects_at(8) > objects_at(mid));
    }

    #[test]
    fn stopped_traffic_freezes_the_scene() {
        let scenario =
            DriveScenario::named(DatasetPreset::kitti_like(), NamedScenario::StopAndGo, 8, 11);
        let frames = scenario.frames();
        // Frames 2 and 3 sit inside the first stop ([2, 4) for n = 8): held
        // traffic means near-total overlap between them.
        assert!(frames[3].active_events.contains(&"stopped-traffic"));
        let overlap = frames[3].pillar_overlap.unwrap();
        assert!(overlap > 0.9, "frozen traffic overlap {overlap}");
    }
}
