//! # spade-pointcloud
//!
//! Synthetic LiDAR point-cloud workloads and 3D-object-detection evaluation
//! for the SPADE reproduction (HPCA 2024).
//!
//! The paper evaluates on KITTI and nuScenes LiDAR frames. Those datasets are
//! not redistributable here, so this crate provides a **synthetic scene and
//! LiDAR generator** whose output matches the *spatial statistics* that the
//! accelerator's behaviour depends on: a handful of percent of the BEV grid
//! active, with active pillars clustered around road agents (cars,
//! pedestrians, cyclists) plus scattered ground/clutter returns. Everything is
//! seeded and deterministic.
//!
//! Modules:
//!
//! * [`geometry`] — points, oriented 3D boxes, rotated-rectangle BEV IoU.
//! * [`object`] — road-agent classes and per-class size models.
//! * [`scene`] — scene composition (object placement, ground truth).
//! * [`lidar`] — LiDAR-style point sampling from a scene.
//! * [`dataset`] — KITTI-like and nuScenes-like presets (detection range,
//!   pillar size, BEV grid shape, frame statistics).
//! * [`drive`] — multi-frame drive scenarios with evolving object density,
//!   scripted events (stopped traffic, tunnels, crossing waves), and a
//!   consecutive-frame pillar-overlap metric (the workload axis of the
//!   design-space exploration engine).
//! * [`world`] — frame-to-frame persistent world state: objects carry
//!   per-class velocities, advance between frames, despawn out of range,
//!   and spawn at scripted rates.
//! * [`pillarize`] — point cloud → active pillar coordinates + per-pillar
//!   point groups.
//! * [`eval`] — detection matching, average precision (AP), and mAP.
//! * [`proxy`] — the accuracy-proxy model used to reproduce the paper's
//!   accuracy-vs-sparsity trade-off curves without GPU training.
//!
//! ## Example
//!
//! ```
//! use spade_pointcloud::{DatasetPreset, SceneGenerator};
//!
//! let preset = DatasetPreset::kitti_like();
//! let mut gen = SceneGenerator::new(preset.scene_config(), 42);
//! let scene = gen.generate();
//! let cloud = scene.sample_lidar(&preset.lidar_config(), 42);
//! assert!(cloud.len() > 1_000);
//! let pillars = spade_pointcloud::pillarize::pillarize(&cloud, &preset.pillar_config());
//! // Typical occupancy is a few percent of the BEV grid.
//! assert!(pillars.active_coords.len() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod drive;
pub mod eval;
pub mod geometry;
pub mod lidar;
pub mod object;
pub mod pillarize;
pub mod proxy;
pub mod scene;
pub mod world;

pub use dataset::DatasetPreset;
pub use drive::{
    DensityProfile, DriveEvent, DriveFrame, DriveScenario, DriveScenarioConfig, EventTimeline,
    NamedScenario, ScenePersistence, TimedEvent,
};
pub use eval::{evaluate_detections, Detection, EvalResult};
pub use geometry::{BoundingBox3, Point3};
pub use lidar::LidarConfig;
pub use object::{ObjectClass, SceneObject};
pub use pillarize::{PillarizationConfig, PillarizedCloud};
pub use proxy::AccuracyProxy;
pub use scene::{Scene, SceneConfig, SceneGenerator};
pub use world::{PersistentWorld, WorldObject, WorldStep};
