//! Scene composition: object placement and ground-truth generation.

use crate::geometry::Point3;
use crate::lidar::{self, LidarConfig};
use crate::object::{ObjectClass, SceneObject};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic scene generator.
///
/// The defaults approximate a KITTI-like urban frame: ~10–30 agents inside a
/// forward-facing detection range, placed on a road corridor so that active
/// pillars cluster the way real LiDAR frames do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Detection range along X: `[x_min, x_max)` metres.
    pub x_range: (f64, f64),
    /// Detection range along Y: `[y_min, y_max)` metres.
    pub y_range: (f64, f64),
    /// Minimum number of objects per scene.
    pub min_objects: usize,
    /// Maximum number of objects per scene.
    pub max_objects: usize,
    /// Probability weights over `[car, pedestrian, cyclist, truck]`.
    pub class_weights: [f64; 4],
    /// Minimum BEV centre distance between two placed objects (m).
    pub min_separation: f64,
}

impl SceneConfig {
    /// A KITTI-like forward-facing configuration (0–70 m × ±40 m).
    #[must_use]
    pub fn kitti_like() -> Self {
        Self {
            x_range: (0.0, 69.12),
            y_range: (-39.68, 39.68),
            min_objects: 8,
            max_objects: 24,
            class_weights: [0.55, 0.25, 0.15, 0.05],
            min_separation: 2.5,
        }
    }

    /// A nuScenes-like full-surround configuration (±51.2 m in both axes).
    #[must_use]
    pub fn nuscenes_like() -> Self {
        Self {
            x_range: (-51.2, 51.2),
            y_range: (-51.2, 51.2),
            min_objects: 20,
            max_objects: 50,
            class_weights: [0.45, 0.25, 0.10, 0.20],
            min_separation: 2.5,
        }
    }

    /// Samples an object class from `class_weights` (one `gen_range` draw).
    ///
    /// Shared by the i.i.d. [`SceneGenerator`] and the persistent
    /// [`crate::world::PersistentWorld`], so the two drive modes keep an
    /// identical class mix.
    pub(crate) fn sample_class(&self, rng: &mut StdRng) -> ObjectClass {
        let total: f64 = self.class_weights.iter().sum();
        let mut x = rng.gen_range(0.0..total);
        for (i, w) in self.class_weights.iter().enumerate() {
            if x < *w {
                return ObjectClass::ALL[i];
            }
            x -= w;
        }
        ObjectClass::Car
    }

    /// Draws a y position, biased towards a road corridor around y = 0 for
    /// half of the samples so pillars cluster like a driving scene (one
    /// `gen_bool` plus one `gen_range` draw). The corridor clamp keeps the
    /// half-open `y < y_max` contract even when the range is narrower than
    /// the corridor (`next_down`, not the `- EPSILON` no-op it replaces).
    pub(crate) fn corridor_biased_y(&self, rng: &mut StdRng) -> f64 {
        if rng.gen_bool(0.5) {
            rng.gen_range(-8.0f64..8.0)
                .clamp(self.y_range.0, self.y_range.1.next_down())
        } else {
            rng.gen_range(self.y_range.0..self.y_range.1)
        }
    }

    /// Whether a candidate centre at `(x, y)` clears `min_separation` from
    /// every centre in `others`.
    pub(crate) fn clears_separation(
        &self,
        others: impl Iterator<Item = (f64, f64)>,
        x: f64,
        y: f64,
    ) -> bool {
        let mut others = others;
        !others.any(|(ox, oy)| {
            let (dx, dy) = (ox - x, oy - y);
            (dx * dx + dy * dy).sqrt() < self.min_separation
        })
    }
}

impl Default for SceneConfig {
    fn default() -> Self {
        Self::kitti_like()
    }
}

/// A composed scene: the placed objects (ground truth) and the detection
/// range they live in.
///
/// # Example
///
/// ```
/// use spade_pointcloud::{SceneConfig, SceneGenerator};
/// let mut gen = SceneGenerator::new(SceneConfig::kitti_like(), 7);
/// let scene = gen.generate();
/// assert!(scene.objects().len() >= 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    config: SceneConfig,
    objects: Vec<SceneObject>,
}

impl Scene {
    /// Creates a scene from explicit objects (useful for targeted tests such
    /// as the single-car feature-map study of Fig. 13(b)).
    #[must_use]
    pub fn from_objects(config: SceneConfig, objects: Vec<SceneObject>) -> Self {
        Self { config, objects }
    }

    /// The scene's configuration (detection range etc.).
    #[must_use]
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// The ground-truth objects.
    #[must_use]
    pub fn objects(&self) -> &[SceneObject] {
        &self.objects
    }

    /// Samples a LiDAR-style point cloud from this scene.
    ///
    /// Deterministic for a given `(scene, config, seed)` triple.
    #[must_use]
    pub fn sample_lidar(&self, lidar: &LidarConfig, seed: u64) -> Vec<Point3> {
        lidar::sample_scene(self, lidar, seed)
    }
}

/// Seeded generator of random scenes.
#[derive(Debug, Clone)]
pub struct SceneGenerator {
    config: SceneConfig,
    rng: StdRng,
}

impl SceneGenerator {
    /// Creates a generator with the given configuration and seed.
    #[must_use]
    pub fn new(config: SceneConfig, seed: u64) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates the next random scene.
    pub fn generate(&mut self) -> Scene {
        let n = self
            .rng
            .gen_range(self.config.min_objects..=self.config.max_objects);
        let mut objects: Vec<SceneObject> = Vec::with_capacity(n);
        let mut attempts = 0;
        while objects.len() < n && attempts < n * 50 {
            attempts += 1;
            let class = self.config.sample_class(&mut self.rng);
            let x = self
                .rng
                .gen_range(self.config.x_range.0..self.config.x_range.1);
            let y = self.config.corridor_biased_y(&mut self.rng);
            let yaw = self
                .rng
                .gen_range(-std::f64::consts::PI..std::f64::consts::PI);
            let candidate = SceneObject::at(class, x, y, yaw);
            if self.config.clears_separation(
                objects.iter().map(|o| (o.bbox.cx, o.bbox.cy)),
                candidate.bbox.cx,
                candidate.bbox.cy,
            ) {
                objects.push(candidate);
            }
        }
        Scene {
            config: self.config.clone(),
            objects,
        }
    }

    /// Generates a batch of scenes.
    pub fn generate_batch(&mut self, count: usize) -> Vec<Scene> {
        (0..count).map(|_| self.generate()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cfg = SceneConfig::kitti_like();
        let a = SceneGenerator::new(cfg.clone(), 123).generate();
        let b = SceneGenerator::new(cfg, 123).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_scenes() {
        let cfg = SceneConfig::kitti_like();
        let a = SceneGenerator::new(cfg.clone(), 1).generate();
        let b = SceneGenerator::new(cfg, 2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn objects_respect_range_and_count() {
        let cfg = SceneConfig::kitti_like();
        let scene = SceneGenerator::new(cfg.clone(), 9).generate();
        assert!(scene.objects().len() >= cfg.min_objects);
        assert!(scene.objects().len() <= cfg.max_objects);
        for o in scene.objects() {
            assert!(o.bbox.cx >= cfg.x_range.0 && o.bbox.cx < cfg.x_range.1);
            assert!(o.bbox.cy >= cfg.y_range.0 && o.bbox.cy < cfg.y_range.1);
        }
    }

    #[test]
    fn objects_respect_min_separation() {
        let cfg = SceneConfig::kitti_like();
        let scene = SceneGenerator::new(cfg.clone(), 11).generate();
        let objs = scene.objects();
        for i in 0..objs.len() {
            for j in (i + 1)..objs.len() {
                let dx = objs[i].bbox.cx - objs[j].bbox.cx;
                let dy = objs[i].bbox.cy - objs[j].bbox.cy;
                assert!((dx * dx + dy * dy).sqrt() >= cfg.min_separation);
            }
        }
    }

    #[test]
    fn nuscenes_config_allows_negative_x() {
        let cfg = SceneConfig::nuscenes_like();
        let scenes = SceneGenerator::new(cfg, 3).generate_batch(5);
        assert!(scenes
            .iter()
            .flat_map(|s| s.objects())
            .any(|o| o.bbox.cx < 0.0));
    }

    #[test]
    fn from_objects_preserves_input() {
        let obj = SceneObject::at(ObjectClass::Car, 10.0, 0.0, 0.0);
        let scene = Scene::from_objects(SceneConfig::kitti_like(), vec![obj]);
        assert_eq!(scene.objects().len(), 1);
        assert_eq!(scene.objects()[0], obj);
    }
}
