//! Point cloud → pillar discretisation.

use crate::geometry::Point3;
use serde::{Deserialize, Serialize};
use spade_tensor::{CprTensor, GridShape, PillarCoord};
use std::collections::BTreeMap;

/// Configuration of the BEV pillarisation grid.
///
/// # Example
///
/// ```
/// use spade_pointcloud::PillarizationConfig;
/// let cfg = PillarizationConfig::kitti_like();
/// let grid = cfg.grid_shape();
/// assert_eq!(grid.height, 432);
/// assert_eq!(grid.width, 496);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PillarizationConfig {
    /// X range covered by the grid (m).
    pub x_range: (f64, f64),
    /// Y range covered by the grid (m).
    pub y_range: (f64, f64),
    /// Z range of points that are kept (m).
    pub z_range: (f64, f64),
    /// Pillar size along X (m).
    pub pillar_size_x: f64,
    /// Pillar size along Y (m).
    pub pillar_size_y: f64,
    /// Maximum points retained per pillar (PointPillars keeps 32–100).
    pub max_points_per_pillar: usize,
}

impl PillarizationConfig {
    /// KITTI-like PointPillars grid: 0.16 m pillars over 69.12 × 79.36 m,
    /// giving a 432 × 496 BEV grid.
    #[must_use]
    pub fn kitti_like() -> Self {
        Self {
            x_range: (0.0, 69.12),
            y_range: (-39.68, 39.68),
            z_range: (-3.0, 1.0),
            pillar_size_x: 0.16,
            pillar_size_y: 0.16,
            max_points_per_pillar: 32,
        }
    }

    /// nuScenes-like grid: 0.2 m pillars over ±51.2 m, giving 512 × 512.
    #[must_use]
    pub fn nuscenes_like() -> Self {
        Self {
            x_range: (-51.2, 51.2),
            y_range: (-51.2, 51.2),
            z_range: (-5.0, 3.0),
            pillar_size_x: 0.2,
            pillar_size_y: 0.2,
            max_points_per_pillar: 20,
        }
    }

    /// The BEV grid shape induced by the ranges and pillar sizes. Rows bin X
    /// and columns bin Y.
    #[must_use]
    pub fn grid_shape(&self) -> GridShape {
        let height = ((self.x_range.1 - self.x_range.0) / self.pillar_size_x).round() as u32;
        let width = ((self.y_range.1 - self.y_range.0) / self.pillar_size_y).round() as u32;
        GridShape::new(height.max(1), width.max(1))
    }

    /// Maps a point to its pillar coordinate, or `None` if it falls outside
    /// the grid or the Z crop.
    #[must_use]
    pub fn coord_of(&self, p: &Point3) -> Option<PillarCoord> {
        if p.z < self.z_range.0 || p.z >= self.z_range.1 {
            return None;
        }
        if p.x < self.x_range.0 || p.x >= self.x_range.1 {
            return None;
        }
        if p.y < self.y_range.0 || p.y >= self.y_range.1 {
            return None;
        }
        let row = ((p.x - self.x_range.0) / self.pillar_size_x) as u32;
        let col = ((p.y - self.y_range.0) / self.pillar_size_y) as u32;
        let grid = self.grid_shape();
        let coord = PillarCoord::new(row.min(grid.height - 1), col.min(grid.width - 1));
        Some(coord)
    }
}

impl Default for PillarizationConfig {
    fn default() -> Self {
        Self::kitti_like()
    }
}

/// The result of pillarising a point cloud: active coordinates (CPR order)
/// and the points gathered into each pillar.
#[derive(Debug, Clone, PartialEq)]
pub struct PillarizedCloud {
    /// Grid shape of the pillarisation.
    pub grid: GridShape,
    /// Active pillar coordinates, sorted row-major (CPR order).
    pub active_coords: Vec<PillarCoord>,
    /// Points per active pillar, parallel to `active_coords`, each truncated
    /// to `max_points_per_pillar`.
    pub points_per_pillar: Vec<Vec<Point3>>,
}

impl PillarizedCloud {
    /// Number of active pillars.
    #[must_use]
    pub fn num_active(&self) -> usize {
        self.active_coords.len()
    }

    /// Occupancy: active pillars / total grid cells.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.num_active() as f64 / self.grid.num_cells() as f64
    }

    /// Active-pillar overlap with another pillarisation: the Jaccard index
    /// `|A ∩ B| / |A ∪ B|` of the two active-coordinate sets. Two clouds
    /// with no active pillars are identical (1.0). Both coordinate lists are
    /// CPR-sorted by construction, so the intersection is one linear merge.
    ///
    /// This is the temporal-locality metric of a drive: the overlap between
    /// consecutive frames is the fraction of the working set a caching
    /// backend could reuse frame to frame.
    #[must_use]
    pub fn pillar_overlap(&self, other: &PillarizedCloud) -> f64 {
        let (a, b) = (&self.active_coords, &other.active_coords);
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let mut inter = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = a.len() + b.len() - inter;
        inter as f64 / union as f64
    }

    /// Builds a pattern-only CPR tensor (all features 1.0) with the given
    /// channel count. Useful when only the sparsity pattern matters.
    /// `active_coords` is CPR-sorted by construction, so this takes the
    /// sort-free fast path.
    #[must_use]
    pub fn to_pattern_tensor(&self, channels: usize) -> CprTensor {
        CprTensor::from_sorted_coords(self.grid, channels, &self.active_coords)
    }
}

/// Discretises a point cloud onto the BEV grid.
#[must_use]
pub fn pillarize(points: &[Point3], config: &PillarizationConfig) -> PillarizedCloud {
    let grid = config.grid_shape();
    let mut map: BTreeMap<PillarCoord, Vec<Point3>> = BTreeMap::new();
    for p in points {
        if let Some(coord) = config.coord_of(p) {
            let bucket = map.entry(coord).or_default();
            if bucket.len() < config.max_points_per_pillar {
                bucket.push(*p);
            }
        }
    }
    let (active_coords, points_per_pillar): (Vec<_>, Vec<_>) = map.into_iter().unzip();
    PillarizedCloud {
        grid,
        active_coords,
        points_per_pillar,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kitti_grid_shape_matches_pointpillars() {
        let cfg = PillarizationConfig::kitti_like();
        assert_eq!(cfg.grid_shape(), GridShape::new(432, 496));
        let cfg = PillarizationConfig::nuscenes_like();
        assert_eq!(cfg.grid_shape(), GridShape::new(512, 512));
    }

    #[test]
    fn coord_of_filters_out_of_range_points() {
        let cfg = PillarizationConfig::kitti_like();
        assert!(cfg.coord_of(&Point3::new(-1.0, 0.0, 0.0)).is_none());
        assert!(cfg.coord_of(&Point3::new(10.0, 100.0, 0.0)).is_none());
        assert!(cfg.coord_of(&Point3::new(10.0, 0.0, 5.0)).is_none());
        assert!(cfg.coord_of(&Point3::new(10.0, 0.0, 0.0)).is_some());
    }

    #[test]
    fn coord_mapping_is_consistent_with_pillar_size() {
        let cfg = PillarizationConfig::kitti_like();
        let c = cfg.coord_of(&Point3::new(0.0, -39.68, 0.0)).unwrap();
        assert_eq!(c, PillarCoord::new(0, 0));
        let c = cfg.coord_of(&Point3::new(0.17, -39.50, 0.0)).unwrap();
        assert_eq!(c, PillarCoord::new(1, 1));
    }

    #[test]
    fn pillarize_groups_points_and_sorts_coords() {
        let cfg = PillarizationConfig::kitti_like();
        let pts = vec![
            Point3::new(5.0, 5.0, 0.0),
            Point3::new(5.01, 5.01, 0.1),
            Point3::new(30.0, -20.0, 0.0),
        ];
        let pc = pillarize(&pts, &cfg);
        assert_eq!(pc.num_active(), 2);
        // CPR order: sorted row-major.
        assert!(pc.active_coords.windows(2).all(|w| w[0] < w[1]));
        let total_points: usize = pc.points_per_pillar.iter().map(Vec::len).sum();
        assert_eq!(total_points, 3);
    }

    #[test]
    fn max_points_per_pillar_is_enforced() {
        let mut cfg = PillarizationConfig::kitti_like();
        cfg.max_points_per_pillar = 4;
        let pts: Vec<Point3> = (0..20)
            .map(|i| Point3::new(5.0, 5.0, -1.0 + i as f64 * 0.05))
            .collect();
        let pc = pillarize(&pts, &cfg);
        assert_eq!(pc.num_active(), 1);
        assert_eq!(pc.points_per_pillar[0].len(), 4);
    }

    #[test]
    fn pattern_tensor_matches_active_count() {
        let cfg = PillarizationConfig::kitti_like();
        let pts = vec![Point3::new(1.0, 0.0, 0.0), Point3::new(60.0, 30.0, 0.0)];
        let pc = pillarize(&pts, &cfg);
        let t = pc.to_pattern_tensor(64);
        assert_eq!(t.num_active(), pc.num_active());
        assert_eq!(t.channels(), 64);
        assert!(t.check_invariants());
    }

    #[test]
    fn empty_cloud_gives_empty_pillars() {
        let pc = pillarize(&[], &PillarizationConfig::kitti_like());
        assert_eq!(pc.num_active(), 0);
        assert_eq!(pc.occupancy(), 0.0);
    }

    #[test]
    fn pillar_overlap_is_the_jaccard_of_active_sets() {
        let cfg = PillarizationConfig::kitti_like();
        let a = pillarize(
            &[Point3::new(5.0, 5.0, 0.0), Point3::new(30.0, -20.0, 0.0)],
            &cfg,
        );
        let b = pillarize(
            &[Point3::new(5.0, 5.0, 0.0), Point3::new(50.0, 10.0, 0.0)],
            &cfg,
        );
        // One shared pillar, three in the union.
        assert!((a.pillar_overlap(&b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.pillar_overlap(&a), 1.0);
        // Symmetric; disjoint clouds overlap 0; empty-vs-empty is identical.
        assert_eq!(a.pillar_overlap(&b), b.pillar_overlap(&a));
        let empty = pillarize(&[], &cfg);
        assert_eq!(a.pillar_overlap(&empty), 0.0);
        assert_eq!(empty.pillar_overlap(&empty), 1.0);
    }
}
