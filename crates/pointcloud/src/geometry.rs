//! Points, oriented boxes, and BEV intersection-over-union.

use serde::{Deserialize, Serialize};

/// A point in 3D space with an intensity value, as produced by a LiDAR.
///
/// # Example
///
/// ```
/// use spade_pointcloud::Point3;
/// let p = Point3::new(1.0, 2.0, 0.5);
/// assert_eq!(p.intensity, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point3 {
    /// Forward (X) coordinate in metres.
    pub x: f64,
    /// Lateral (Y) coordinate in metres.
    pub y: f64,
    /// Vertical (Z) coordinate in metres.
    pub z: f64,
    /// Reflectance intensity in `[0, 1]`.
    pub intensity: f64,
}

impl Point3 {
    /// Creates a point with zero intensity.
    #[must_use]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self {
            x,
            y,
            z,
            intensity: 0.0,
        }
    }

    /// Creates a point with an intensity value.
    #[must_use]
    pub const fn with_intensity(x: f64, y: f64, z: f64, intensity: f64) -> Self {
        Self { x, y, z, intensity }
    }

    /// Euclidean distance to another point.
    #[must_use]
    pub fn distance(&self, other: &Self) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2) + (self.z - other.z).powi(2))
            .sqrt()
    }

    /// Horizontal (BEV) range from the sensor origin.
    #[must_use]
    pub fn bev_range(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }
}

/// An oriented 3D bounding box: centre, dimensions, and yaw about the Z axis.
///
/// This is the standard 7-DoF box parameterisation used by KITTI/nuScenes
/// 3D object detection.
///
/// # Example
///
/// ```
/// use spade_pointcloud::BoundingBox3;
/// let b = BoundingBox3::new(10.0, 0.0, 0.0, 4.0, 2.0, 1.6, 0.0);
/// assert!(b.contains_bev(10.5, 0.5));
/// assert!(!b.contains_bev(13.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox3 {
    /// Centre X (m).
    pub cx: f64,
    /// Centre Y (m).
    pub cy: f64,
    /// Centre Z (m).
    pub cz: f64,
    /// Length along the box's local X axis (m).
    pub length: f64,
    /// Width along the box's local Y axis (m).
    pub width: f64,
    /// Height along Z (m).
    pub height: f64,
    /// Yaw angle about Z (radians).
    pub yaw: f64,
}

impl BoundingBox3 {
    /// Creates a box from centre, dimensions, and yaw.
    #[must_use]
    pub const fn new(
        cx: f64,
        cy: f64,
        cz: f64,
        length: f64,
        width: f64,
        height: f64,
        yaw: f64,
    ) -> Self {
        Self {
            cx,
            cy,
            cz,
            length,
            width,
            height,
            yaw,
        }
    }

    /// The four BEV (XY-plane) corners of the box, counter-clockwise.
    #[must_use]
    pub fn bev_corners(&self) -> [(f64, f64); 4] {
        let (s, c) = self.yaw.sin_cos();
        let hl = self.length / 2.0;
        let hw = self.width / 2.0;
        let local = [(hl, hw), (-hl, hw), (-hl, -hw), (hl, -hw)];
        let mut out = [(0.0, 0.0); 4];
        for (i, (lx, ly)) in local.iter().enumerate() {
            out[i] = (self.cx + lx * c - ly * s, self.cy + lx * s + ly * c);
        }
        out
    }

    /// BEV footprint area (m²).
    #[must_use]
    pub fn bev_area(&self) -> f64 {
        self.length * self.width
    }

    /// Volume (m³).
    #[must_use]
    pub fn volume(&self) -> f64 {
        self.length * self.width * self.height
    }

    /// Returns `true` if the BEV point `(x, y)` lies inside the box footprint.
    #[must_use]
    pub fn contains_bev(&self, x: f64, y: f64) -> bool {
        let (s, c) = self.yaw.sin_cos();
        let dx = x - self.cx;
        let dy = y - self.cy;
        // Rotate into the box frame.
        let lx = dx * c + dy * s;
        let ly = -dx * s + dy * c;
        lx.abs() <= self.length / 2.0 + 1e-12 && ly.abs() <= self.width / 2.0 + 1e-12
    }

    /// Returns `true` if the 3D point lies inside the box.
    #[must_use]
    pub fn contains(&self, p: &Point3) -> bool {
        self.contains_bev(p.x, p.y) && (p.z - self.cz).abs() <= self.height / 2.0 + 1e-12
    }

    /// Vertical overlap length with another box (m).
    #[must_use]
    pub fn z_overlap(&self, other: &Self) -> f64 {
        let a_lo = self.cz - self.height / 2.0;
        let a_hi = self.cz + self.height / 2.0;
        let b_lo = other.cz - other.height / 2.0;
        let b_hi = other.cz + other.height / 2.0;
        (a_hi.min(b_hi) - a_lo.max(b_lo)).max(0.0)
    }

    /// BEV (rotated rectangle) intersection-over-union with another box.
    #[must_use]
    pub fn bev_iou(&self, other: &Self) -> f64 {
        let inter = polygon_intersection_area(&self.bev_corners(), &other.bev_corners());
        let union = self.bev_area() + other.bev_area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            (inter / union).clamp(0.0, 1.0)
        }
    }

    /// 3D intersection-over-union with another box.
    #[must_use]
    pub fn iou_3d(&self, other: &Self) -> f64 {
        let inter_bev = polygon_intersection_area(&self.bev_corners(), &other.bev_corners());
        let inter = inter_bev * self.z_overlap(other);
        let union = self.volume() + other.volume() - inter;
        if union <= 0.0 {
            0.0
        } else {
            (inter / union).clamp(0.0, 1.0)
        }
    }
}

/// Area of a convex polygon given counter-clockwise vertices (shoelace).
fn polygon_area(poly: &[(f64, f64)]) -> f64 {
    if poly.len() < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..poly.len() {
        let (x1, y1) = poly[i];
        let (x2, y2) = poly[(i + 1) % poly.len()];
        acc += x1 * y2 - x2 * y1;
    }
    acc.abs() / 2.0
}

/// Intersection area of two convex polygons via Sutherland–Hodgman clipping.
fn polygon_intersection_area(a: &[(f64, f64); 4], b: &[(f64, f64); 4]) -> f64 {
    let mut subject: Vec<(f64, f64)> = a.to_vec();
    // Ensure the clip polygon is counter-clockwise for a consistent inside test.
    let clip = to_ccw(b);
    for i in 0..clip.len() {
        if subject.is_empty() {
            return 0.0;
        }
        let edge_start = clip[i];
        let edge_end = clip[(i + 1) % clip.len()];
        let input = std::mem::take(&mut subject);
        for j in 0..input.len() {
            let current = input[j];
            let previous = input[(j + input.len() - 1) % input.len()];
            let current_in = is_inside(edge_start, edge_end, current);
            let previous_in = is_inside(edge_start, edge_end, previous);
            if current_in {
                if !previous_in {
                    if let Some(p) = line_intersection(previous, current, edge_start, edge_end) {
                        subject.push(p);
                    }
                }
                subject.push(current);
            } else if previous_in {
                if let Some(p) = line_intersection(previous, current, edge_start, edge_end) {
                    subject.push(p);
                }
            }
        }
    }
    polygon_area(&subject)
}

fn to_ccw(poly: &[(f64, f64); 4]) -> Vec<(f64, f64)> {
    let mut v = poly.to_vec();
    let mut signed = 0.0;
    for i in 0..v.len() {
        let (x1, y1) = v[i];
        let (x2, y2) = v[(i + 1) % v.len()];
        signed += x1 * y2 - x2 * y1;
    }
    if signed < 0.0 {
        v.reverse();
    }
    v
}

fn is_inside(a: (f64, f64), b: (f64, f64), p: (f64, f64)) -> bool {
    (b.0 - a.0) * (p.1 - a.1) - (b.1 - a.1) * (p.0 - a.0) >= -1e-12
}

fn line_intersection(
    p1: (f64, f64),
    p2: (f64, f64),
    p3: (f64, f64),
    p4: (f64, f64),
) -> Option<(f64, f64)> {
    let denom = (p1.0 - p2.0) * (p3.1 - p4.1) - (p1.1 - p2.1) * (p3.0 - p4.0);
    if denom.abs() < 1e-12 {
        return None;
    }
    let t = ((p1.0 - p3.0) * (p3.1 - p4.1) - (p1.1 - p3.1) * (p3.0 - p4.0)) / denom;
    Some((p1.0 + t * (p2.0 - p1.0), p1.1 + t * (p2.1 - p1.1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_and_range() {
        let a = Point3::new(3.0, 4.0, 0.0);
        assert!((a.bev_range() - 5.0).abs() < 1e-12);
        assert!((a.distance(&Point3::new(0.0, 0.0, 0.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn identical_boxes_have_iou_one() {
        let b = BoundingBox3::new(5.0, 3.0, 0.0, 4.0, 2.0, 1.5, 0.3);
        assert!((b.bev_iou(&b) - 1.0).abs() < 1e-6);
        assert!((b.iou_3d(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn disjoint_boxes_have_iou_zero() {
        let a = BoundingBox3::new(0.0, 0.0, 0.0, 2.0, 2.0, 2.0, 0.0);
        let b = BoundingBox3::new(10.0, 10.0, 0.0, 2.0, 2.0, 2.0, 0.0);
        assert_eq!(a.bev_iou(&b), 0.0);
        assert_eq!(a.iou_3d(&b), 0.0);
    }

    #[test]
    fn axis_aligned_half_overlap() {
        // Two 2x2 boxes offset by 1 in x: intersection 1x2=2, union 8-2=6.
        let a = BoundingBox3::new(0.0, 0.0, 0.0, 2.0, 2.0, 2.0, 0.0);
        let b = BoundingBox3::new(1.0, 0.0, 0.0, 2.0, 2.0, 2.0, 0.0);
        assert!((a.bev_iou(&b) - 2.0 / 6.0).abs() < 1e-9);
        assert!((a.iou_3d(&b) - (2.0 * 2.0) / (16.0 - 4.0)).abs() < 1e-9);
    }

    #[test]
    fn rotation_invariance_of_self_iou() {
        for yaw in [0.0, 0.4, 1.2, std::f64::consts::FRAC_PI_2] {
            let b = BoundingBox3::new(2.0, -3.0, 0.5, 3.9, 1.7, 1.6, yaw);
            assert!((b.bev_iou(&b) - 1.0).abs() < 1e-6, "yaw={yaw}");
        }
    }

    #[test]
    fn rotated_90_degrees_square_overlaps_fully() {
        let a = BoundingBox3::new(0.0, 0.0, 0.0, 2.0, 2.0, 1.0, 0.0);
        let b = BoundingBox3::new(0.0, 0.0, 0.0, 2.0, 2.0, 1.0, std::f64::consts::FRAC_PI_2);
        assert!((a.bev_iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn contains_bev_respects_rotation() {
        let b = BoundingBox3::new(0.0, 0.0, 0.0, 4.0, 1.0, 1.0, std::f64::consts::FRAC_PI_2);
        // After 90° rotation the long axis points along Y.
        assert!(b.contains_bev(0.0, 1.8));
        assert!(!b.contains_bev(1.8, 0.0));
    }

    #[test]
    fn contains_checks_height() {
        let b = BoundingBox3::new(0.0, 0.0, 1.0, 2.0, 2.0, 2.0, 0.0);
        assert!(b.contains(&Point3::new(0.0, 0.0, 1.9)));
        assert!(!b.contains(&Point3::new(0.0, 0.0, 2.5)));
    }

    #[test]
    fn z_overlap_cases() {
        let a = BoundingBox3::new(0.0, 0.0, 0.0, 1.0, 1.0, 2.0, 0.0);
        let b = BoundingBox3::new(0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 0.0);
        assert!((a.z_overlap(&b) - 1.0).abs() < 1e-12);
        let c = BoundingBox3::new(0.0, 0.0, 5.0, 1.0, 1.0, 2.0, 0.0);
        assert_eq!(a.z_overlap(&c), 0.0);
    }

    #[test]
    fn bev_corners_are_consistent_with_area() {
        let b = BoundingBox3::new(1.0, 2.0, 0.0, 4.0, 2.0, 1.0, 0.7);
        let corners = b.bev_corners();
        assert!((polygon_area(&corners) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn nested_boxes_iou_is_area_ratio() {
        let outer = BoundingBox3::new(0.0, 0.0, 0.0, 4.0, 4.0, 2.0, 0.0);
        let inner = BoundingBox3::new(0.0, 0.0, 0.0, 2.0, 2.0, 2.0, 0.0);
        assert!((outer.bev_iou(&inner) - 4.0 / 16.0).abs() < 1e-9);
    }
}
