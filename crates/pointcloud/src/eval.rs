//! Detection matching, average precision, and mAP.

use crate::geometry::BoundingBox3;
use crate::object::{ObjectClass, SceneObject};
use serde::{Deserialize, Serialize};

/// How box overlap is measured when matching detections to ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IouKind {
    /// Rotated-rectangle IoU on the BEV plane (the paper's "mAP (BEV)").
    Bev,
    /// Full 3D IoU (the paper's "mAP (3D)").
    ThreeD,
}

/// A single detection: class, box, and confidence score.
///
/// # Example
///
/// ```
/// use spade_pointcloud::{Detection, ObjectClass};
/// use spade_pointcloud::geometry::BoundingBox3;
/// let d = Detection::new(ObjectClass::Car, BoundingBox3::new(1.0, 2.0, 0.0, 4.0, 1.7, 1.6, 0.0), 0.9);
/// assert_eq!(d.class, ObjectClass::Car);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Predicted class.
    pub class: ObjectClass,
    /// Predicted box.
    pub bbox: BoundingBox3,
    /// Confidence score in `[0, 1]`.
    pub score: f64,
}

impl Detection {
    /// Creates a detection.
    #[must_use]
    pub const fn new(class: ObjectClass, bbox: BoundingBox3, score: f64) -> Self {
        Self { class, bbox, score }
    }
}

/// Per-class and aggregate evaluation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// `(class, average precision)` pairs for classes present in ground truth.
    pub per_class_ap: Vec<(ObjectClass, f64)>,
    /// Mean average precision over those classes.
    pub map: f64,
}

/// The IoU threshold the paper's benchmarks use per class (0.7 for vehicles,
/// 0.5 for small agents — the KITTI convention).
#[must_use]
pub fn iou_threshold(class: ObjectClass) -> f64 {
    match class {
        ObjectClass::Car | ObjectClass::Truck => 0.7,
        ObjectClass::Pedestrian | ObjectClass::Cyclist => 0.5,
    }
}

/// Evaluates detections from a set of frames against ground truth.
///
/// `frames` pairs each frame's ground-truth objects with its detections.
/// AP is computed with 40-point interpolation per class; mAP averages the
/// per-class APs of classes that appear in the ground truth.
#[must_use]
pub fn evaluate_detections(
    frames: &[(Vec<SceneObject>, Vec<Detection>)],
    iou_kind: IouKind,
) -> EvalResult {
    let mut per_class_ap = Vec::new();
    for class in ObjectClass::ALL {
        let total_gt: usize = frames
            .iter()
            .map(|(gt, _)| gt.iter().filter(|o| o.class == class).count())
            .sum();
        if total_gt == 0 {
            continue;
        }
        // Gather (score, is_true_positive) across frames.
        let mut scored: Vec<(f64, bool)> = Vec::new();
        for (gt, dets) in frames {
            let gt_boxes: Vec<&SceneObject> = gt.iter().filter(|o| o.class == class).collect();
            let mut matched = vec![false; gt_boxes.len()];
            // Non-finite confidence scores carry no usable ranking signal:
            // drop them up front (deterministically — the filter is
            // order-preserving) instead of letting a NaN poison the sort.
            let mut dets: Vec<&Detection> = dets
                .iter()
                .filter(|d| d.class == class && d.score.is_finite())
                .collect();
            dets.sort_by(|a, b| b.score.total_cmp(&a.score));
            for det in dets {
                let mut best_iou = 0.0;
                let mut best_idx = None;
                for (i, g) in gt_boxes.iter().enumerate() {
                    if matched[i] {
                        continue;
                    }
                    let iou = match iou_kind {
                        IouKind::Bev => det.bbox.bev_iou(&g.bbox),
                        IouKind::ThreeD => det.bbox.iou_3d(&g.bbox),
                    };
                    if iou > best_iou {
                        best_iou = iou;
                        best_idx = Some(i);
                    }
                }
                let tp = if best_iou >= iou_threshold(class) {
                    if let Some(i) = best_idx {
                        matched[i] = true;
                        true
                    } else {
                        false
                    }
                } else {
                    false
                };
                scored.push((det.score, tp));
            }
        }
        let ap = average_precision(&mut scored, total_gt);
        per_class_ap.push((class, ap));
    }
    let map = if per_class_ap.is_empty() {
        0.0
    } else {
        per_class_ap.iter().map(|(_, ap)| ap).sum::<f64>() / per_class_ap.len() as f64
    };
    EvalResult { per_class_ap, map }
}

/// 40-point interpolated average precision from scored detections.
///
/// Scores are assumed finite (`evaluate_detections` filters non-finite
/// confidences before matching); `total_cmp` keeps the sort total and
/// panic-free regardless.
fn average_precision(scored: &mut [(f64, bool)], total_gt: usize) -> f64 {
    if total_gt == 0 {
        return 0.0;
    }
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut precision_recall: Vec<(f64, f64)> = Vec::with_capacity(scored.len());
    for (_, is_tp) in scored.iter() {
        if *is_tp {
            tp += 1;
        } else {
            fp += 1;
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = tp as f64 / total_gt as f64;
        precision_recall.push((recall, precision));
    }
    // 40-point interpolation over recall ∈ (0, 1].
    let mut ap = 0.0;
    for i in 1..=40 {
        let r = i as f64 / 40.0;
        let p = precision_recall
            .iter()
            .filter(|(recall, _)| *recall >= r)
            .map(|(_, precision)| *precision)
            .fold(0.0f64, f64::max);
        ap += p / 40.0;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt_car(x: f64, y: f64) -> SceneObject {
        SceneObject::at(ObjectClass::Car, x, y, 0.0)
    }

    fn det_car(x: f64, y: f64, score: f64) -> Detection {
        let o = SceneObject::at(ObjectClass::Car, x, y, 0.0);
        Detection::new(ObjectClass::Car, o.bbox, score)
    }

    #[test]
    fn perfect_detections_give_map_one() {
        let gt = vec![gt_car(10.0, 0.0), gt_car(20.0, 5.0)];
        let dets = vec![det_car(10.0, 0.0, 0.9), det_car(20.0, 5.0, 0.8)];
        let result = evaluate_detections(&[(gt, dets)], IouKind::Bev);
        assert!((result.map - 1.0).abs() < 1e-9, "map = {}", result.map);
    }

    #[test]
    fn missing_detections_reduce_map() {
        let gt = vec![gt_car(10.0, 0.0), gt_car(20.0, 5.0)];
        let dets = vec![det_car(10.0, 0.0, 0.9)];
        let result = evaluate_detections(&[(gt, dets)], IouKind::Bev);
        assert!(result.map < 0.75);
        assert!(result.map > 0.0);
    }

    #[test]
    fn false_positives_reduce_precision() {
        let gt = vec![gt_car(10.0, 0.0)];
        let dets = vec![
            det_car(50.0, 30.0, 0.95), // false positive with higher score
            det_car(10.0, 0.0, 0.90),
        ];
        let with_fp = evaluate_detections(&[(gt.clone(), dets)], IouKind::Bev);
        let without_fp = evaluate_detections(&[(gt, vec![det_car(10.0, 0.0, 0.9)])], IouKind::Bev);
        assert!(with_fp.map < without_fp.map);
    }

    #[test]
    fn class_mismatch_is_not_a_match() {
        let gt = vec![gt_car(10.0, 0.0)];
        let o = SceneObject::at(ObjectClass::Car, 10.0, 0.0, 0.0);
        let dets = vec![Detection::new(ObjectClass::Pedestrian, o.bbox, 0.9)];
        let result = evaluate_detections(&[(gt, dets)], IouKind::Bev);
        assert_eq!(result.map, 0.0);
    }

    #[test]
    fn slightly_offset_detection_still_matches_bev() {
        // 0.3 m offset on a 4 m car keeps IoU above 0.7.
        let gt = vec![gt_car(10.0, 0.0)];
        let dets = vec![det_car(10.3, 0.0, 0.9)];
        let result = evaluate_detections(&[(gt, dets)], IouKind::Bev);
        assert!(result.map > 0.9);
    }

    #[test]
    fn empty_ground_truth_gives_zero_map() {
        let result = evaluate_detections(&[(vec![], vec![det_car(1.0, 1.0, 0.5)])], IouKind::Bev);
        assert_eq!(result.map, 0.0);
        assert!(result.per_class_ap.is_empty());
    }

    #[test]
    fn thresholds_follow_kitti_convention() {
        assert_eq!(iou_threshold(ObjectClass::Car), 0.7);
        assert_eq!(iou_threshold(ObjectClass::Pedestrian), 0.5);
        assert_eq!(iou_threshold(ObjectClass::Cyclist), 0.5);
        assert_eq!(iou_threshold(ObjectClass::Truck), 0.7);
    }

    #[test]
    fn duplicate_detections_count_once() {
        let gt = vec![gt_car(10.0, 0.0)];
        let dets = vec![det_car(10.0, 0.0, 0.9), det_car(10.0, 0.0, 0.8)];
        let result = evaluate_detections(&[(gt, dets)], IouKind::Bev);
        // The duplicate cannot match the already-claimed ground-truth box, so
        // AP never exceeds 1.0; with interpolated AP the trailing false
        // positive after full recall does not lower it either.
        assert!((result.map - 1.0).abs() < 1e-9);
        // But a duplicate arriving *before* the true positive does lower AP.
        let dets = vec![det_car(50.0, 30.0, 0.99), det_car(10.0, 0.0, 0.8)];
        let gt = vec![gt_car(10.0, 0.0)];
        let worse = evaluate_detections(&[(gt, dets)], IouKind::Bev);
        assert!(worse.map < 1.0);
    }

    #[test]
    fn non_finite_scores_are_filtered_not_fatal() {
        // Regression: a NaN confidence used to panic the sort via
        // `partial_cmp().unwrap()`. Now NaN/±inf detections are dropped
        // deterministically and the finite ones evaluate as usual.
        let gt = vec![gt_car(10.0, 0.0), gt_car(20.0, 5.0)];
        let dets = vec![
            det_car(10.0, 0.0, f64::NAN),
            det_car(10.0, 0.0, 0.9),
            det_car(20.0, 5.0, f64::INFINITY),
            det_car(20.0, 5.0, f64::NEG_INFINITY),
        ];
        let result = evaluate_detections(&[(gt.clone(), dets)], IouKind::Bev);
        // Only the single finite detection counts: one of two cars found.
        let only_finite = evaluate_detections(&[(gt, vec![det_car(10.0, 0.0, 0.9)])], IouKind::Bev);
        assert_eq!(result, only_finite);
        assert!(result.map > 0.0 && result.map < 1.0);
        // All-non-finite detections evaluate to zero recall, not a panic.
        let gt = vec![gt_car(10.0, 0.0)];
        let result = evaluate_detections(&[(gt, vec![det_car(10.0, 0.0, f64::NAN)])], IouKind::Bev);
        assert_eq!(result.map, 0.0);
    }

    #[test]
    fn three_d_iou_is_stricter_than_bev() {
        let gt = vec![gt_car(10.0, 0.0)];
        // Offset vertically: BEV unaffected, 3D overlap reduced.
        let mut bbox = SceneObject::at(ObjectClass::Car, 10.0, 0.0, 0.0).bbox;
        bbox.cz += 0.7;
        let dets = vec![Detection::new(ObjectClass::Car, bbox, 0.9)];
        let bev = evaluate_detections(&[(gt.clone(), dets.clone())], IouKind::Bev);
        let three_d = evaluate_detections(&[(gt, dets)], IouKind::ThreeD);
        assert!(bev.map >= three_d.map);
    }
}
