//! Road-agent object classes and per-class size/point-density models.

use crate::geometry::BoundingBox3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Road-agent classes used by the KITTI-like and nuScenes-like workloads.
///
/// # Example
///
/// ```
/// use spade_pointcloud::ObjectClass;
/// assert!(ObjectClass::Car.typical_dimensions().0 > ObjectClass::Pedestrian.typical_dimensions().0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    /// Passenger car (~4.0 × 1.7 × 1.6 m).
    Car,
    /// Pedestrian (~0.6 × 0.6 × 1.75 m).
    Pedestrian,
    /// Cyclist (~1.8 × 0.6 × 1.75 m).
    Cyclist,
    /// Truck / bus (~8.0 × 2.5 × 3.0 m); appears in nuScenes-like scenes.
    Truck,
}

impl ObjectClass {
    /// All supported classes.
    pub const ALL: [ObjectClass; 4] = [
        ObjectClass::Car,
        ObjectClass::Pedestrian,
        ObjectClass::Cyclist,
        ObjectClass::Truck,
    ];

    /// Typical `(length, width, height)` in metres.
    #[must_use]
    pub const fn typical_dimensions(self) -> (f64, f64, f64) {
        match self {
            ObjectClass::Car => (4.0, 1.7, 1.6),
            ObjectClass::Pedestrian => (0.6, 0.6, 1.75),
            ObjectClass::Cyclist => (1.8, 0.6, 1.75),
            ObjectClass::Truck => (8.0, 2.5, 3.0),
        }
    }

    /// Relative surface point density (points per m² at 10 m range); larger
    /// and more reflective objects return more points.
    #[must_use]
    pub const fn point_density(self) -> f64 {
        match self {
            ObjectClass::Car => 60.0,
            ObjectClass::Pedestrian => 80.0,
            ObjectClass::Cyclist => 70.0,
            ObjectClass::Truck => 50.0,
        }
    }

    /// Typical `(min, max)` ground speed in m/s for a moving agent of this
    /// class in urban traffic, used by the persistent-world drive generator
    /// to advance objects between frames.
    #[must_use]
    pub const fn typical_speed_mps(self) -> (f64, f64) {
        match self {
            ObjectClass::Car => (4.0, 14.0),
            ObjectClass::Pedestrian => (0.5, 1.8),
            ObjectClass::Cyclist => (2.5, 7.0),
            ObjectClass::Truck => (3.0, 11.0),
        }
    }

    /// Upper bound on this class's ground speed (m/s) — the per-frame
    /// displacement of a persistent-world object never exceeds
    /// `max_speed_mps() * dt`.
    #[must_use]
    pub const fn max_speed_mps(self) -> f64 {
        self.typical_speed_mps().1
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ObjectClass::Car => "car",
            ObjectClass::Pedestrian => "pedestrian",
            ObjectClass::Cyclist => "cyclist",
            ObjectClass::Truck => "truck",
        };
        f.write_str(name)
    }
}

/// An object placed in a scene: its class and its ground-truth box.
///
/// # Example
///
/// ```
/// use spade_pointcloud::{ObjectClass, SceneObject};
/// let o = SceneObject::at(ObjectClass::Car, 12.0, -3.0, 0.4);
/// assert_eq!(o.class, ObjectClass::Car);
/// assert!(o.bbox.contains_bev(12.0, -3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// The object's class.
    pub class: ObjectClass,
    /// The object's ground-truth bounding box.
    pub bbox: BoundingBox3,
}

impl SceneObject {
    /// Creates an object of the given class at `(x, y)` with the given yaw,
    /// using the class's typical dimensions and resting on the ground plane
    /// (z = 0 at the bottom of the box).
    #[must_use]
    pub fn at(class: ObjectClass, x: f64, y: f64, yaw: f64) -> Self {
        let (l, w, h) = class.typical_dimensions();
        Self {
            class,
            bbox: BoundingBox3::new(x, y, h / 2.0 - 1.6, l, w, h, yaw),
        }
    }

    /// Creates an object with explicit dimensions.
    #[must_use]
    pub const fn with_box(class: ObjectClass, bbox: BoundingBox3) -> Self {
        Self { class, bbox }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_dimensions_ordering() {
        let (cl, cw, ch) = ObjectClass::Car.typical_dimensions();
        let (pl, pw, ph) = ObjectClass::Pedestrian.typical_dimensions();
        assert!(cl > pl && cw > pw);
        assert!(ph > ch / 2.0);
        let (tl, ..) = ObjectClass::Truck.typical_dimensions();
        assert!(tl > cl);
    }

    #[test]
    fn display_names_are_lowercase() {
        for c in ObjectClass::ALL {
            let s = c.to_string();
            assert_eq!(s, s.to_lowercase());
        }
    }

    #[test]
    fn scene_object_box_contains_centre() {
        let o = SceneObject::at(ObjectClass::Cyclist, 5.0, 5.0, 1.0);
        assert!(o.bbox.contains_bev(5.0, 5.0));
        assert!((o.bbox.length - 1.8).abs() < 1e-12);
    }

    #[test]
    fn all_classes_have_positive_density() {
        for c in ObjectClass::ALL {
            assert!(c.point_density() > 0.0);
        }
    }

    #[test]
    fn speed_ranges_are_ordered_and_positive() {
        for c in ObjectClass::ALL {
            let (lo, hi) = c.typical_speed_mps();
            assert!(lo > 0.0 && hi >= lo);
            assert_eq!(c.max_speed_mps(), hi);
        }
        // Vehicles outrun pedestrians.
        assert!(ObjectClass::Car.max_speed_mps() > ObjectClass::Pedestrian.max_speed_mps());
    }
}
