//! Frame-to-frame persistent world state for drive scenarios.
//!
//! The legacy [`crate::drive::DriveScenario`] samples an independent scene
//! for every frame, so consecutive frames share no objects and no temporal
//! locality exists for caching or serving backends to exploit. This module
//! models the world the way a real drive sees it: objects persist across
//! frames, advance by per-class velocities, despawn when they leave the
//! detection range, and spawn at scripted or profile-driven rates — so most
//! active pillars of frame `i` are still active in frame `i + 1`.
//!
//! [`PersistentWorld`] is deliberately independent of the event/profile
//! machinery in [`crate::drive`]: each [`PersistentWorld::step`] takes the
//! already-resolved per-frame control inputs ([`WorldStep`]), which keeps the
//! world itself a pure deterministic function of its step sequence.

use crate::object::{ObjectClass, SceneObject};
use crate::scene::{Scene, SceneConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One object of the persistent world: its scene object plus the identity
/// and velocity that let it be tracked across frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldObject {
    /// Stable identity across frames (unique within one world).
    pub id: u64,
    /// The object's class and ground-truth box at the current frame.
    pub object: SceneObject,
    /// Ground velocity `(vx, vy)` in m/s, aligned with the object's yaw.
    pub velocity: (f64, f64),
}

impl WorldObject {
    /// Ground speed in m/s.
    #[must_use]
    pub fn speed(&self) -> f64 {
        let (vx, vy) = self.velocity;
        (vx * vx + vy * vy).sqrt()
    }
}

/// Resolved per-frame control inputs for one [`PersistentWorld::step`].
///
/// The drive layer computes these from its density profile and event
/// timeline; the world only consumes the resolved numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldStep {
    /// Object count the world should settle at after this step. When the
    /// current population exceeds it (tunnel, thinning traffic), the objects
    /// furthest from the sensor despawn first; when it falls short, new
    /// objects spawn at profile-driven positions.
    pub target_count: usize,
    /// Scale factor on every object's displacement this frame (`0.0` freezes
    /// traffic, `1.0` is free flow). Clamped to `[0, 1]`.
    pub speed_multiplier: f64,
    /// Extra pedestrians/cyclists spawned crossing the road corridor
    /// laterally this frame (a crossing wave), on top of `target_count`.
    pub crossing_spawns: usize,
    /// Seed of this step's spawn RNG; the world's evolution is a pure
    /// function of its initial state and the step sequence.
    pub seed: u64,
}

/// A persistent traffic world evolving over the frames of a drive.
///
/// # Example
///
/// ```
/// use spade_pointcloud::{PersistentWorld, SceneConfig, WorldStep};
///
/// let mut world = PersistentWorld::new(SceneConfig::kitti_like(), 0.1);
/// world.step(&WorldStep { target_count: 12, speed_multiplier: 1.0, crossing_spawns: 0, seed: 7 });
/// let before: Vec<_> = world.objects().iter().map(|o| (o.id, o.object.bbox.cx)).collect();
/// world.step(&WorldStep { target_count: 12, speed_multiplier: 1.0, crossing_spawns: 0, seed: 8 });
/// // Surviving objects moved by at most their speed × dt.
/// for o in world.objects() {
///     if let Some((_, x0)) = before.iter().find(|(id, _)| *id == o.id) {
///         assert!((o.object.bbox.cx - x0).abs() <= o.speed() * 0.1 + 1e-9);
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PersistentWorld {
    config: SceneConfig,
    dt_s: f64,
    next_id: u64,
    objects: Vec<WorldObject>,
}

impl PersistentWorld {
    /// Creates an empty world over a detection range, with `dt_s` seconds
    /// between consecutive frames (LiDAR sweeps at 10 Hz → `0.1`).
    #[must_use]
    pub fn new(config: SceneConfig, dt_s: f64) -> Self {
        Self {
            config,
            dt_s: dt_s.max(0.0),
            next_id: 0,
            objects: Vec::new(),
        }
    }

    /// Seconds between consecutive frames.
    #[must_use]
    pub const fn dt_s(&self) -> f64 {
        self.dt_s
    }

    /// The current world population.
    #[must_use]
    pub fn objects(&self) -> &[WorldObject] {
        &self.objects
    }

    /// Snapshot of the current population as a [`Scene`] (ground truth for
    /// frame generation and detection evaluation).
    #[must_use]
    pub fn scene(&self) -> Scene {
        Scene::from_objects(
            self.config.clone(),
            self.objects.iter().map(|w| w.object).collect(),
        )
    }

    /// Advances the world by one frame: move, despawn, then spawn.
    ///
    /// 1. Every object advances by `velocity × dt × speed_multiplier` along
    ///    its heading (an object never teleports further than
    ///    [`ObjectClass::max_speed_mps`]` × dt` in one step).
    /// 2. Objects whose centre leaves the detection range despawn; if the
    ///    population still exceeds `target_count`, the objects furthest from
    ///    the sensor despawn first (traffic thins from the horizon inward —
    ///    and a tunnel's near-zero target empties the frame).
    /// 3. New objects spawn until `target_count` is met, plus any crossing
    ///    wave, all from this step's seeded RNG.
    pub fn step(&mut self, step: &WorldStep) {
        let dt = self.dt_s * step.speed_multiplier.clamp(0.0, 1.0);
        for w in &mut self.objects {
            w.object.bbox.cx += w.velocity.0 * dt;
            w.object.bbox.cy += w.velocity.1 * dt;
        }
        let (x_min, x_max) = self.config.x_range;
        let (y_min, y_max) = self.config.y_range;
        self.objects.retain(|w| {
            let (x, y) = (w.object.bbox.cx, w.object.bbox.cy);
            x >= x_min && x < x_max && y >= y_min && y < y_max
        });
        if self.objects.len() > step.target_count {
            // Deterministic thinning: keep the objects closest to the sensor.
            self.objects.sort_by(|a, b| {
                let d = |w: &WorldObject| {
                    let (x, y) = (w.object.bbox.cx, w.object.bbox.cy);
                    x * x + y * y
                };
                d(a).total_cmp(&d(b)).then(a.id.cmp(&b.id))
            });
            self.objects.truncate(step.target_count);
            // Restore spawn order so downstream iteration stays stable.
            self.objects.sort_by_key(|w| w.id);
        }
        let mut rng = StdRng::seed_from_u64(step.seed ^ 0x57e9_0b1d);
        let deficit = step.target_count.saturating_sub(self.objects.len());
        for _ in 0..deficit {
            self.spawn_profile_driven(&mut rng);
        }
        for _ in 0..step.crossing_spawns {
            self.spawn_crossing(&mut rng);
        }
    }

    /// Spawns one object at a profile-driven position (uniform over the
    /// range with the same road-corridor bias as the i.i.d. scene
    /// generator), respecting `min_separation`. Gives up silently after a
    /// bounded number of placement attempts, like the scene generator.
    fn spawn_profile_driven(&mut self, rng: &mut StdRng) {
        for _ in 0..50 {
            // Class mix and corridor bias are the shared `SceneConfig`
            // helpers, so the persistent and i.i.d. drive modes cannot
            // drift apart.
            let class = self.config.sample_class(rng);
            let x = rng.gen_range(self.config.x_range.0..self.config.x_range.1);
            let y = self.config.corridor_biased_y(rng);
            let yaw = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
            if self.try_spawn(class, x, y, yaw, rng) {
                return;
            }
        }
    }

    /// Spawns one pedestrian or cyclist entering the road corridor
    /// laterally — the building block of a crossing wave.
    fn spawn_crossing(&mut self, rng: &mut StdRng) {
        for _ in 0..50 {
            let class = if rng.gen_bool(0.7) {
                ObjectClass::Pedestrian
            } else {
                ObjectClass::Cyclist
            };
            // Cross somewhere in the mid-range band of the detection range.
            let (x_min, x_max) = self.config.x_range;
            let x = x_min + (x_max - x_min) * rng.gen_range(0.3f64..0.7);
            // Enter from one corridor edge, heading across to the other.
            // `next_down` keeps the entry point inside the half-open
            // `y < y_max` retention range even for a narrow custom range
            // (`- f64::EPSILON` is a no-op at these magnitudes and would
            // let the crosser despawn on its first step).
            let from_left = rng.gen_bool(0.5);
            let edge = 8.0f64.min(self.config.y_range.1.next_down());
            let y = if from_left { -edge } else { edge };
            let yaw = if from_left {
                std::f64::consts::FRAC_PI_2
            } else {
                -std::f64::consts::FRAC_PI_2
            };
            if self.try_spawn(class, x, y.max(self.config.y_range.0), yaw, rng) {
                return;
            }
        }
    }

    /// Places the object if it clears `min_separation`; returns success.
    fn try_spawn(
        &mut self,
        class: ObjectClass,
        x: f64,
        y: f64,
        yaw: f64,
        rng: &mut StdRng,
    ) -> bool {
        let candidate = SceneObject::at(class, x, y, yaw);
        if !self.config.clears_separation(
            self.objects
                .iter()
                .map(|w| (w.object.bbox.cx, w.object.bbox.cy)),
            candidate.bbox.cx,
            candidate.bbox.cy,
        ) {
            return false;
        }
        let (lo, hi) = class.typical_speed_mps();
        let speed = rng.gen_range(lo..hi);
        let (s, c) = yaw.sin_cos();
        self.objects.push(WorldObject {
            id: self.next_id,
            object: candidate,
            velocity: (speed * c, speed * s),
        });
        self.next_id += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(target: usize, seed: u64) -> WorldStep {
        WorldStep {
            target_count: target,
            speed_multiplier: 1.0,
            crossing_spawns: 0,
            seed,
        }
    }

    #[test]
    fn world_evolution_is_deterministic() {
        let run = || {
            let mut w = PersistentWorld::new(SceneConfig::kitti_like(), 0.1);
            for i in 0..6 {
                w.step(&step(14, 100 + i));
            }
            w.objects().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn objects_persist_and_never_teleport() {
        let mut w = PersistentWorld::new(SceneConfig::kitti_like(), 0.1);
        w.step(&step(16, 1));
        for i in 0..8u64 {
            let before: Vec<WorldObject> = w.objects().to_vec();
            w.step(&step(16, 2 + i));
            let mut survivors = 0;
            for o in w.objects() {
                if let Some(prev) = before.iter().find(|p| p.id == o.id) {
                    survivors += 1;
                    let dx = o.object.bbox.cx - prev.object.bbox.cx;
                    let dy = o.object.bbox.cy - prev.object.bbox.cy;
                    let dist = (dx * dx + dy * dy).sqrt();
                    let bound = o.object.class.max_speed_mps() * w.dt_s();
                    assert!(dist <= bound + 1e-9, "id {} moved {dist} > {bound}", o.id);
                    assert_eq!(o.velocity, prev.velocity, "velocity changed mid-flight");
                }
            }
            assert!(
                survivors > 0,
                "the world should carry objects across frames"
            );
        }
    }

    #[test]
    fn speed_zero_freezes_traffic() {
        let mut w = PersistentWorld::new(SceneConfig::kitti_like(), 0.1);
        w.step(&step(12, 5));
        let before = w.objects().to_vec();
        w.step(&WorldStep {
            target_count: 12,
            speed_multiplier: 0.0,
            crossing_spawns: 0,
            seed: 6,
        });
        for o in w.objects() {
            if let Some(prev) = before.iter().find(|p| p.id == o.id) {
                assert_eq!(o.object.bbox.cx, prev.object.bbox.cx);
                assert_eq!(o.object.bbox.cy, prev.object.bbox.cy);
            }
        }
    }

    #[test]
    fn low_target_empties_the_world_far_objects_first() {
        let mut w = PersistentWorld::new(SceneConfig::kitti_like(), 0.1);
        w.step(&step(20, 9));
        assert!(w.objects().len() >= 15);
        let nearest_before = w
            .objects()
            .iter()
            .map(|o| o.object.bbox.cx.hypot(o.object.bbox.cy))
            .fold(f64::INFINITY, f64::min);
        w.step(&WorldStep {
            target_count: 2,
            speed_multiplier: 0.0,
            crossing_spawns: 0,
            seed: 10,
        });
        assert_eq!(w.objects().len(), 2);
        // The survivors are near-sensor objects.
        for o in w.objects() {
            let d = o.object.bbox.cx.hypot(o.object.bbox.cy);
            assert!(d <= nearest_before + 40.0);
        }
    }

    #[test]
    fn crossing_spawns_add_lateral_small_agents() {
        let mut w = PersistentWorld::new(SceneConfig::kitti_like(), 0.1);
        w.step(&step(8, 3));
        let ids_before: Vec<u64> = w.objects().iter().map(|o| o.id).collect();
        w.step(&WorldStep {
            target_count: 8,
            speed_multiplier: 1.0,
            crossing_spawns: 4,
            seed: 4,
        });
        let crossers: Vec<&WorldObject> = w
            .objects()
            .iter()
            .filter(|o| !ids_before.contains(&o.id))
            .collect();
        assert!(!crossers.is_empty());
        for c in crossers {
            assert!(matches!(
                c.object.class,
                ObjectClass::Pedestrian | ObjectClass::Cyclist
            ));
            // Lateral heading: |vy| dominates |vx|.
            assert!(c.velocity.1.abs() > c.velocity.0.abs());
        }
    }

    #[test]
    fn objects_respect_min_separation_at_spawn() {
        let mut w = PersistentWorld::new(SceneConfig::kitti_like(), 0.1);
        w.step(&step(24, 77));
        let objs = w.objects();
        // Separation holds at spawn time (it can erode later as objects
        // move, which mirrors real traffic closing gaps).
        for i in 0..objs.len() {
            for j in (i + 1)..objs.len() {
                let dx = objs[i].object.bbox.cx - objs[j].object.bbox.cx;
                let dy = objs[i].object.bbox.cy - objs[j].object.bbox.cy;
                assert!((dx * dx + dy * dy).sqrt() >= 2.5 - 1e-9);
            }
        }
    }
}
