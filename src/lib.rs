//! # spade
//!
//! Facade crate of the SPADE reproduction (HPCA 2024, "SPADE: Sparse
//! Pillar-based 3D Object Detection Accelerator for Autonomous Driving").
//! It re-exports the workspace crates so applications can depend on a single
//! crate:
//!
//! * [`tensor`] — CPR sparse tensors, dense BEV tensors, quantization.
//! * [`pointcloud`] — synthetic LiDAR scenes, dataset presets, detection
//!   evaluation, accuracy proxy.
//! * [`nn`] — sparse convolution variants, rule generation, dynamic vector
//!   pruning, the PointPillars/CenterPoint/PillarNet model zoo.
//! * [`sim`] — DRAM/SRAM/cache/energy/area models.
//! * [`core`] — the SPADE accelerator (RGU, GSU, MXU, dataflow).
//! * [`baselines`] — DenseAcc, SpConv2D-Acc, PointAcc, CPU/GPU/Jetson models.
//!
//! ## Quickstart
//!
//! ```
//! use spade::pointcloud::DatasetPreset;
//! use spade::nn::graph::{execute_pattern, ExecutionContext};
//! use spade::nn::{Model, ModelKind};
//! use spade::core::{SpadeAccelerator, SpadeConfig};
//!
//! // Generate a synthetic KITTI-like frame and run SPP2 on SPADE.HE.
//! let preset = DatasetPreset::kitti_like();
//! let frame = preset.generate_frame(7);
//! let model = Model::build(ModelKind::Spp2);
//! let ctx = ExecutionContext::default();
//! let (trace, workloads) = execute_pattern(
//!     model.spec(),
//!     &frame.pillars.active_coords,
//!     preset.grid_shape(),
//!     1_000_000,
//!     &ctx,
//! );
//! let perf = SpadeAccelerator::new(SpadeConfig::high_end())
//!     .simulate_network(&workloads, trace.encoder_macs);
//! assert!(perf.fps > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spade_baselines as baselines;
pub use spade_core as core;
pub use spade_nn as nn;
pub use spade_pointcloud as pointcloud;
pub use spade_sim as sim;
pub use spade_tensor as tensor;
