# Portable millisecond wall clock for the perf scripts. GNU date supports
# `%N` (nanoseconds) but BSD/macOS date prints a literal "N"; bash >= 5
# exposes EPOCHREALTIME everywhere. Try the precise sources first and fall
# back to whole seconds rather than failing.
now_ms() {
    if [ -n "${EPOCHREALTIME:-}" ]; then
        # Microsecond float; the decimal separator is locale-dependent.
        local whole=${EPOCHREALTIME%[.,]*}
        local frac=${EPOCHREALTIME#*[.,]}
        echo $((whole * 1000 + 10#${frac:0:3}))
        return
    fi
    local ns
    ns=$(date +%s%N)
    case "$ns" in
        *N) echo $(($(date +%s) * 1000)) ;; # BSD date: no %N support
        *) echo $((ns / 1000000)) ;;
    esac
}
