#!/usr/bin/env bash
# Cheap perf-regression gate for CI: times the reduced-grid DSE sweep
# (release profile, 4 workers) and fails when it exceeds 3x the committed
# reference wall time. The generous 3x margin absorbs runner-speed noise;
# the gate exists to catch order-of-magnitude hot-path regressions, not
# percent-level drift (BENCH_PR<n>.json tracks that).
#
# The reference lives in scripts/dse_smoke_reference_ms and is refreshed
# whenever a PR intentionally moves the hot path (see scripts/bench_snapshot.sh).
# It is an absolute wall time, so if CI migrates to a genuinely slower runner
# class, re-measure there and commit the new reference rather than widening
# the margin.
set -euo pipefail
cd "$(dirname "$0")/.."
# shellcheck source=scripts/now_ms.sh
. scripts/now_ms.sh

cargo build --release -q -p spade-bench --bin spade-experiments

start=$(now_ms)
./target/release/spade-experiments --reduced dse --jobs 4 >/dev/null
end=$(now_ms)
ms=$(( end - start ))

ref=$(cat scripts/dse_smoke_reference_ms)
limit=$(( ref * 3 ))
echo "reduced-grid dse sweep: ${ms} ms (reference ${ref} ms, limit ${limit} ms)"
if [ "$ms" -gt "$limit" ]; then
    echo "perf smoke FAILED: ${ms} ms > ${limit} ms (3x the committed reference)"
    exit 1
fi
echo "perf smoke passed"
