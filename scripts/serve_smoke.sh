#!/usr/bin/env bash
# Service smoke for CI: boots spade-serve on an ephemeral port, replays 50
# Zipfian loadgen requests against it, asserts the run was healthy (no
# request errors, a non-zero cache hit-rate), and checks the server shuts
# down cleanly on the SHUTDOWN verb.
#
# Like perf_smoke.sh, the loadgen wall time is gated at 3x a committed
# reference (scripts/serve_smoke_reference_ms) to catch order-of-magnitude
# serving-path regressions without tripping on runner noise. Re-measure and
# commit a new reference when a PR intentionally moves the serving path.
set -euo pipefail
cd "$(dirname "$0")/.."
# shellcheck source=scripts/now_ms.sh
. scripts/now_ms.sh

cargo build --release -q -p spade-bench --bin spade-serve --bin spade-loadgen

log=$(mktemp)
json=$(mktemp)
trap 'rm -f "$log" "$json"; kill "$server_pid" 2>/dev/null || true' EXIT

./target/release/spade-serve --threads 4 --jobs 2 --budget 2 >"$log" &
server_pid=$!

# The server prints "listening on <addr>" once bound; wait for it.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve smoke FAILED: server never reported its address"
    exit 1
fi
echo "server up on ${addr}"

start=$(now_ms)
./target/release/spade-loadgen --addr "$addr" --requests 50 --connections 2 \
    --catalog 6 --seed 2024 --json "$json" --stats --shutdown
end=$(now_ms)
ms=$(( end - start ))

# Clean shutdown: the SHUTDOWN verb must stop the process by itself.
for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "serve smoke FAILED: server still running after SHUTDOWN"
    exit 1
fi
wait "$server_pid" 2>/dev/null || true

hit_rate=$(sed -n 's/.*"hit_rate": \([0-9.eE+-]*\).*/\1/p' "$json")
errors=$(sed -n 's/.*"errors": \([0-9]*\).*/\1/p' "$json")
echo "loadgen: ${ms} ms, hit_rate=${hit_rate}, errors=${errors}"
if [ -z "$hit_rate" ] || [ "$(awk -v h="$hit_rate" 'BEGIN { print (h > 0) ? 1 : 0 }')" != "1" ]; then
    echo "serve smoke FAILED: cache hit-rate must be > 0 (got '${hit_rate}')"
    exit 1
fi
if [ "${errors:-1}" != "0" ]; then
    echo "serve smoke FAILED: ${errors:-?} request errors"
    exit 1
fi

ref=$(cat scripts/serve_smoke_reference_ms)
limit=$(( ref * 3 ))
echo "serve smoke: ${ms} ms (reference ${ref} ms, limit ${limit} ms)"
if [ "$ms" -gt "$limit" ]; then
    echo "serve smoke FAILED: ${ms} ms > ${limit} ms (3x the committed reference)"
    exit 1
fi
echo "serve smoke passed"
