#!/usr/bin/env bash
# CI gate for the SPADE reproduction workspace.
#
# Runs the same checks as .github/workflows/ci.yml:
#   1. cargo fmt --check        — formatting
#   2. cargo clippy -D warnings — lints, all targets
#   3. scripts/lint.sh          — spade-lint repo invariants (lock order,
#                                 determinism, panic surface) + fixture
#                                 self-check + allowlist drift
#   4. cargo test -q            — unit + integration + property + doc tests
#   5. dse smoke with --jobs 4  — the parallel sweep path, reduced grid,
#                                 legacy drive + one scripted scenario,
#                                 full-sweep, delta, and adaptive execution
#   6. perf smoke               — reduced dse (release) vs committed reference
#   7. serve smoke              — spade-serve + 50 spade-loadgen requests:
#                                 warm rate > 0, zero errors, clean SHUTDOWN,
#                                 wall time vs committed reference
#   8. cargo bench --no-run     — all 13 figure benches must compile
#   9. cargo doc --no-deps      — rustdoc with warnings denied (doc rot gate)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> spade-lint (lock order, determinism, panic surface)"
scripts/lint.sh

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> dse smoke (reduced grid, 4 worker threads)"
cargo run -q -p spade-bench --bin spade-experiments -- --reduced dse --jobs 4

echo "==> dse smoke (scripted stop-and-go scenario, persistent world)"
cargo run -q -p spade-bench --bin spade-experiments -- --reduced dse --jobs 4 --scenario stop-and-go

echo "==> dse smoke (stop-and-go scenario, temporal delta execution)"
cargo run -q -p spade-bench --bin spade-experiments -- --reduced dse --jobs 4 --scenario stop-and-go --delta

echo "==> dse smoke (adaptive exploration, reduced grid)"
adaptive_out=$(cargo run -q -p spade-bench --bin spade-experiments -- --reduced dse --jobs 4 --adaptive)
echo "$adaptive_out" | grep -q "cells screened by roofline bound" || {
    echo "adaptive smoke FAILED: no screening summary in output"
    exit 1
}

echo "==> perf smoke (release reduced dse vs committed reference)"
scripts/perf_smoke.sh

echo "==> serve smoke (spade-serve request loop under spade-loadgen)"
scripts/serve_smoke.sh

echo "==> cargo bench -p spade-bench --no-run"
cargo bench -p spade-bench --no-run

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> CI gate passed"
