#!/usr/bin/env bash
# spade-lint gate: repo-invariant static analysis (lock order, determinism
# taint over the call graph, panic surface, units of measure, export-schema
# drift).
#
#   1. spade-lint over the workspace — zero unannotated findings allowed
#   2. machine-readable artifact — `--json` report archived under target/
#      for CI to upload next to the bench snapshots
#   3. fixture self-check — every committed known-bad fixture must FAIL its
#      pass and every known-good fixture must pass, so a regression in the
#      analyzer itself cannot silently green the gate
#   4. allowlist drift — `spade-lint --summary` must match the committed
#      crates/analysis/ALLOWLIST.md, so every new suppression shows up as
#      a reviewable diff
#   5. self-benchmark — the full workspace run must stay within 3x the
#      committed reference wall time (scripts/lint_bench_reference_ms), so
#      an accidentally quadratic pass is caught before it slows every CI run
set -euo pipefail
cd "$(dirname "$0")/.."
# shellcheck source=scripts/now_ms.sh
. scripts/now_ms.sh

echo "==> spade-lint: build"
cargo build -q -p spade-analysis
LINT=target/debug/spade-lint
FIX=crates/analysis/fixtures

echo "==> spade-lint: workspace invariants"
start=$(now_ms)
"$LINT" --root .
end=$(now_ms)
lint_ms=$(( end - start ))

echo "==> spade-lint: JSON artifact"
mkdir -p target
"$LINT" --root . --json > target/spade-lint.json
echo "wrote target/spade-lint.json"

echo "==> spade-lint: fixture self-check"
expect_fail() {
    local label=$1
    shift
    if "$LINT" "$@" >/dev/null 2>&1; then
        echo "ERROR: known-bad fixture passed the $label pass" >&2
        exit 1
    fi
}
expect_fail lock-order   --lock-order  "$FIX/lock_order_bad.rs"
expect_fail determinism  --determinism "$FIX/determinism_bad.rs"
expect_fail taint-chain  --determinism "$FIX/taint_chain_bad_a.rs" "$FIX/taint_chain_bad_b.rs"
expect_fail units        --units       "$FIX/units_bad.rs"
expect_fail schema-drift --schema "$FIX/schema_golden.csv" "$FIX/schema_bad.rs"
"$LINT" --lock-order  "$FIX/lock_order_good.rs"  >/dev/null
"$LINT" --determinism "$FIX/determinism_good.rs" >/dev/null
"$LINT" --units       "$FIX/units_good.rs"       >/dev/null
"$LINT" --schema "$FIX/schema_golden.csv" "$FIX/schema_good.rs" >/dev/null
echo "bad fixtures rejected, good fixtures accepted"

echo "==> spade-lint: allowlist is current"
"$LINT" --root . --summary > target/spade-lint-summary.md
if ! diff -u crates/analysis/ALLOWLIST.md target/spade-lint-summary.md; then
    echo "ERROR: crates/analysis/ALLOWLIST.md is stale. Regenerate with:" >&2
    echo "  cargo run -q -p spade-analysis --bin spade-lint -- --summary > crates/analysis/ALLOWLIST.md" >&2
    exit 1
fi

echo "==> spade-lint: self-benchmark"
ref=$(cat scripts/lint_bench_reference_ms)
limit=$(( ref * 3 ))
echo "workspace lint run: ${lint_ms} ms (reference ${ref} ms, limit ${limit} ms)"
if [ "$lint_ms" -gt "$limit" ]; then
    echo "ERROR: spade-lint took ${lint_ms} ms > ${limit} ms (3x the committed reference)." >&2
    echo "If a new pass legitimately costs this much, re-measure and update" >&2
    echo "scripts/lint_bench_reference_ms; otherwise find the accidental blowup." >&2
    exit 1
fi

echo "==> spade-lint gate passed"
