#!/usr/bin/env bash
# spade-lint gate: repo-invariant static analysis (lock order, determinism,
# panic surface).
#
#   1. spade-lint over the workspace — zero unannotated findings allowed
#   2. fixture self-check — the committed pre-fix PR-7 ABBA fixture must
#      FAIL the lock pass, and the known-good fixture must pass, so a
#      regression in the analyzer itself cannot silently green the gate
#   3. allowlist drift — `spade-lint --summary` must match the committed
#      crates/analysis/ALLOWLIST.md, so every new suppression shows up as
#      a reviewable diff

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> spade-lint: build"
cargo build -q -p spade-analysis
LINT=target/debug/spade-lint

echo "==> spade-lint: workspace invariants"
"$LINT" --root .

echo "==> spade-lint: fixture self-check"
if "$LINT" --lock-order crates/analysis/fixtures/lock_order_bad.rs >/dev/null 2>&1; then
    echo "ERROR: lock_order_bad.rs (pre-fix PR-7 ABBA shape) passed the lock pass" >&2
    exit 1
fi
"$LINT" --lock-order crates/analysis/fixtures/lock_order_good.rs >/dev/null
echo "bad fixture rejected, good fixture accepted"

echo "==> spade-lint: allowlist is current"
mkdir -p target
"$LINT" --root . --summary > target/spade-lint-summary.md
if ! diff -u crates/analysis/ALLOWLIST.md target/spade-lint-summary.md; then
    echo "ERROR: crates/analysis/ALLOWLIST.md is stale. Regenerate with:" >&2
    echo "  cargo run -q -p spade-analysis --bin spade-lint -- --summary > crates/analysis/ALLOWLIST.md" >&2
    exit 1
fi

echo "==> spade-lint gate passed"
