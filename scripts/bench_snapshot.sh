#!/usr/bin/env bash
# Perf-trajectory snapshot: runs the criterion-stub bench suite plus timed
# DSE sweeps (release profile) and writes the medians as machine-readable
# JSON, so every PR can record before/after numbers in a BENCH_PR<n>.json.
#
# Usage: scripts/bench_snapshot.sh [output.json]
#
# The committed BENCH_PR4.json holds two such snapshots ("before" = the tree
# at PR 3, "after" = the PR 4 hot-path rewrite) plus the PR 1 baseline
# medians from BENCH_BASELINE.md for cross-machine context.
set -euo pipefail
cd "$(dirname "$0")/.."
# shellcheck source=scripts/now_ms.sh
. scripts/now_ms.sh
OUT=${1:-/dev/stdout}

cargo build --release -q -p spade-bench --bin spade-experiments

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT
cargo bench -p spade-bench 2>/dev/null | grep ': median ' > "$RAW"

t0=$(now_ms)
./target/release/spade-experiments --reduced dse --jobs 1 >/dev/null
t1=$(now_ms)
REDUCED_MS=$(( t1 - t0 ))

t0=$(now_ms)
./target/release/spade-experiments dse --jobs 1 >/dev/null
t1=$(now_ms)
FULL_MS=$(( t1 - t0 ))

t0=$(now_ms)
./target/release/spade-experiments dse --enlarged --exhaustive --jobs 1 >/dev/null
t1=$(now_ms)
ENLARGED_EX_MS=$(( t1 - t0 ))

t0=$(now_ms)
./target/release/spade-experiments dse --enlarged --adaptive --jobs 1 >/dev/null
t1=$(now_ms)
ENLARGED_AD_MS=$(( t1 - t0 ))

{
    echo '{'
    echo '  "benches": ['
    awk -F': median ' '{
        id = $1
        v = $2
        sub(/ over.*/, "", v)
        if (v ~ /ns$/)      { sub(/ns$/, "", v); ms = v / 1000000 }
        else if (v ~ /µs$/) { sub(/µs$/, "", v); ms = v / 1000 }
        else if (v ~ /ms$/) { sub(/ms$/, "", v); ms = v + 0 }
        else                { sub(/s$/,  "", v); ms = v * 1000 }
        printf "    {\"id\": \"%s\", \"median_ms\": %.6f},\n", id, ms
    }' "$RAW" | sed '$ s/,$//'
    echo '  ],'
    echo "  \"dse\": {\"reduced_grid_jobs1_ms\": ${REDUCED_MS}, \"full_grid_jobs1_ms\": ${FULL_MS}, \"enlarged_exhaustive_jobs1_ms\": ${ENLARGED_EX_MS}, \"enlarged_adaptive_jobs1_ms\": ${ENLARGED_AD_MS}}"
    echo '}'
} > "$OUT"
