//! Offline stub of `serde_derive`.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! real `serde_derive` cannot be fetched. The sibling `serde` stub declares
//! `Serialize` / `Deserialize` as marker traits with blanket impls, which
//! means these derives have nothing to generate: they accept the input and
//! expand to nothing. Swap both stubs for the real crates by repointing the
//! `[workspace.dependencies]` entries once a registry is reachable.

use proc_macro::TokenStream;

/// Stub `#[derive(Serialize)]`: expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Stub `#[derive(Deserialize)]`: expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
