//! Offline stub of `proptest`.
//!
//! Implements the slice of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, strategies for integer ranges,
//! tuples, and `prop::collection::vec`, the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, and `prop_assert!` / `prop_assert_eq!`.
//! Cases are generated from a per-test deterministic xoshiro-style stream; on
//! failure the offending case panics with its inputs printed via `Debug`
//! (there is no shrinking).

use std::fmt::Debug;

/// Deterministic generator handed to strategies while sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5851_f42d_4c95_7f2d,
        }
    }

    /// Returns the next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)`.
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "cannot sample empty range");
        lo + self.next_u64() % (hi - lo)
    }
}

/// A generator of values for property tests, mirroring `proptest::Strategy`.
pub trait Strategy {
    /// The type of the generated values.
    type Value: Debug;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// A strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors of values from `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "cannot sample empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.below(self.len.start as u64, self.len.end as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Drives one property: samples `cases` inputs and runs the body on each.
pub fn run_cases<S: Strategy, F: FnMut(S::Value)>(
    config: &ProptestConfig,
    test_name: &str,
    strategy: &S,
    mut body: F,
) {
    for case in 0..config.cases {
        // Per-test deterministic stream: hash the test name with the index.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng::new(seed ^ (u64::from(case) << 32));
        body(strategy.sample(&mut rng));
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};

    /// Namespace alias so `prop::collection::vec` resolves, as in proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests, mirroring the `proptest!` macro.
///
/// Supports an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(pat in strategy) { body }` items (doc comments and other
/// attributes are preserved).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($arg:pat in $strategy:expr) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = $strategy;
            $crate::run_cases(&config, stringify!($name), &strategy, |$arg| $body);
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17) {
            prop_assert!((3..17).contains(&x));
        }

        #[test]
        fn mapped_tuples_compose(p in (0u32..8, 0u32..8).prop_map(|(a, b)| (a + 1, b + 1))) {
            prop_assert!(p.0 >= 1 && p.0 <= 8);
            prop_assert!(p.1 >= 1 && p.1 <= 8);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..255, 1..9) ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
        }
    }

    #[test]
    fn cases_vary_between_draws() {
        let strategy = crate::collection::vec(0u64..1_000_000, 2..5);
        let mut seen = std::collections::HashSet::new();
        crate::run_cases(
            &ProptestConfig::with_cases(16),
            "variance",
            &strategy,
            |v| {
                seen.insert(format!("{v:?}"));
            },
        );
        // 16 draws from a 10^6 space should essentially never all collide.
        assert!(seen.len() > 8, "only {} distinct cases", seen.len());
    }
}
