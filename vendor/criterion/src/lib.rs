//! Offline stub of `criterion`.
//!
//! Provides the subset of the criterion API the workspace benches use:
//! `Criterion`, `benchmark_group` / `sample_size` / `bench_function` /
//! `finish`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical analysis it
//! warms each closure once, runs `sample_size` timed iterations, and prints
//! the median per-iteration wall time — enough to record the baseline bench
//! snapshot offline. `--no-run` / compile-only CI use is unaffected.

use std::time::{Duration, Instant};

/// Pass-through to [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times one benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one timed sample per configured
    /// sample-count slot.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        black_box(f());
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        target_samples: sample_size.max(1),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{label}: median {median:?} over {} samples",
        b.samples.len()
    );
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for CLI compatibility; the stub has no arguments to parse.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// No-op, mirroring criterion's end-of-run summary hook.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut n = 0u64;
        Criterion::default()
            .sample_size(3)
            .bench_function("count", |b| b.iter(|| n += 1));
        // 1 warm-up + 3 timed samples.
        assert_eq!(n, 4);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut hits = 0u32;
        group.bench_function("inner", |b| b.iter(|| hits += 1));
        group.finish();
        assert_eq!(hits, 3);
    }
}
