//! Offline stub of `rand` 0.8.
//!
//! Implements exactly the API surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool` — on top of xoshiro256++ seeded by splitmix64.
//! The stream differs from the real `rand` crate's ChaCha-based `StdRng`
//! (which the rand docs do not guarantee stable across versions anyway); all
//! in-workspace consumers only require determinism for a fixed seed, which
//! this provides.

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start + (self.end - self.start) * unit as $t;
                // Rounding in the scale-and-add (or the f64 -> f32 narrowing)
                // can land exactly on the excluded end bound; nudge back in to
                // keep the half-open contract.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as the xoshiro authors recommend.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(-64i32..=64);
            assert!((-64..=64).contains(&v));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo_half = 0;
        for _ in 0..1_000 {
            if rng.gen_range(0.0f64..1.0) < 0.5 {
                lo_half += 1;
            }
        }
        assert!((400..600).contains(&lo_half), "lo_half {lo_half}");
    }
}
