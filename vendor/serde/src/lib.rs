//! Offline stub of `serde`.
//!
//! This workspace builds in a container without registry access, so the real
//! `serde` cannot be fetched. Nothing in the workspace serialises values yet —
//! the derives only mark result types as serialisable for future tooling — so
//! this stub keeps the API surface (`Serialize`, `Deserialize`, and the
//! derives) compiling with marker traits that hold for every type. When a
//! registry is reachable, point the `[workspace.dependencies]` entry back at
//! crates.io and everything downstream keeps working unchanged.

/// Marker stand-in for `serde::Serialize`; every type satisfies it.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; every type satisfies it.
pub trait Deserialize<'de> {}
impl<'de, T> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
